#ifndef POLARIS_OBS_EVENT_LOG_H_
#define POLARIS_OBS_EVENT_LOG_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/status.h"

namespace polaris::obs {

enum class EventLevel { kDebug = 0, kInfo, kWarn, kError };

std::string_view EventLevelName(EventLevel level);

/// One structured event: a typed, component-tagged record carrying the
/// ambient trace/span/transaction ids plus free-form key-value fields.
struct EventRecord {
  /// Monotonic per-log sequence number (never reused; survives eviction,
  /// so gaps in a snapshot reveal dropped events).
  uint64_t seq = 0;
  common::Micros ts_us = 0;
  EventLevel level = EventLevel::kInfo;
  std::string component;  // "txn", "sto", "engine", "storage", "health"
  std::string name;       // event type: "txn.commit", "sto.job", ...
  /// Trace identity captured from common::CurrentTraceContext() at Emit.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t txn_id = 0;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string message;  // optional human-readable summary
};

/// The engine-wide structured event log — the typed replacement for the
/// raw POLARIS_LOG text path. Producers Emit leveled, component-tagged
/// records with key-value fields; the log keeps them in a thread-safe
/// bounded ring (oldest evicted first), optionally mirrors each record to
/// a JSON-lines file sink and/or the legacy stderr log, and serves tail
/// snapshots to sys.dm_events.
///
/// Commit/abort, recovery replay, STO job start/finish, retry exhaustion,
/// crash-point hits and SLO transitions are all emitted through here.
class EventLog {
 public:
  /// `clock` must outlive the log; null falls back to a steady wall clock
  /// so standalone logs (tests, tools) work unwired. Engine-owned logs use
  /// the engine clock so event timestamps share the transaction timeline.
  explicit EventLog(common::Clock* clock = nullptr, size_t capacity = 4096);

  /// Records one event. Trace/span/txn ids are stamped from the calling
  /// thread's ambient TraceContext.
  void Emit(EventLevel level, std::string_view component,
            std::string_view name,
            std::vector<std::pair<std::string, std::string>> fields = {},
            std::string_view message = {});

  /// Copy of the ring, oldest first.
  std::vector<EventRecord> Snapshot() const;

  /// Events evicted from the ring since construction.
  uint64_t dropped() const;
  /// Total events emitted since construction.
  uint64_t total_emitted() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Events below this level are discarded (default kDebug = keep all).
  void set_min_level(EventLevel level);

  /// Mirrors every emitted record through common::LogMessage (stderr),
  /// honoring the process-wide log level — keeps the legacy text log
  /// alive for interactive shells while the ring stays the source of
  /// truth.
  void set_stderr_echo(bool on);

  /// Opens a JSON-lines sink: every future event is appended to `path`
  /// as one JSON object per line (the sql_shell --log-json flag).
  common::Status OpenJsonSink(const std::string& path);
  void CloseJsonSink();

  /// The whole ring as JSON lines (EVENTS DUMP).
  std::string ToJsonLines() const;
  static std::string ToJsonLine(const EventRecord& record);

 private:
  common::Micros NowUs() const;
  void EmitLocked(EventRecord&& record);

  common::Clock* clock_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::vector<EventRecord> ring_;  // insertion order, wraps at capacity_
  size_t head_ = 0;                // next write position once full
  bool full_ = false;
  uint64_t next_seq_ = 1;
  uint64_t dropped_ = 0;
  EventLevel min_level_ = EventLevel::kDebug;
  bool stderr_echo_ = false;
  std::ofstream json_sink_;
  bool json_sink_open_ = false;
};

}  // namespace polaris::obs

#endif  // POLARIS_OBS_EVENT_LOG_H_
