#include "obs/time_series.h"

#include <algorithm>
#include <cstdio>

namespace polaris::obs {

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry* registry,
                                       size_t capacity_per_series)
    : registry_(registry),
      capacity_(capacity_per_series == 0 ? 1 : capacity_per_series) {}

void TimeSeriesRecorder::SampleOnce(
    const common::Micros now,
    const std::vector<std::pair<std::string, double>>& gauges) {
  MetricsSnapshot snapshot = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  auto record = [&](const std::string& name, double value) {
    std::deque<Sample>& ring = series_[name];
    ring.push_back({now, value});
    while (ring.size() > capacity_) ring.pop_front();
  };
  for (const auto& [name, value] : snapshot.counters) {
    record(name, static_cast<double>(value));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    record(name + ".count", static_cast<double>(h.count));
    record(name + ".p50", static_cast<double>(h.ApproxQuantile(0.5)));
    record(name + ".p95", static_cast<double>(h.ApproxQuantile(0.95)));
    record(name + ".p99", static_cast<double>(h.ApproxQuantile(0.99)));
  }
  for (const auto& [name, value] : gauges) {
    record(name, value);
  }
  ++samples_;
}

std::vector<std::string> TimeSeriesRecorder::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    (void)ring;
    names.push_back(name);
  }
  return names;
}

std::vector<TimeSeriesRecorder::Sample> TimeSeriesRecorder::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return std::vector<Sample>(it->second.begin(), it->second.end());
}

bool TimeSeriesRecorder::Latest(const std::string& name, Sample* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.empty()) return false;
  *out = it->second.back();
  return true;
}

double TimeSeriesRecorder::DeltaOverWindow(const std::string& name,
                                           size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.size() < 2) return 0;
  const std::deque<Sample>& ring = it->second;
  size_t newest = ring.size() - 1;
  size_t oldest = window >= newest ? 0 : newest - window;
  return std::max(0.0, ring[newest].value - ring[oldest].value);
}

uint64_t TimeSeriesRecorder::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::string TimeSeriesRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"series\":{";
  bool first_series = true;
  for (const auto& [name, ring] : series_) {
    if (!first_series) out += ",";
    first_series = false;
    out += "\"";
    // Metric names are dotted identifiers; no JSON escaping needed beyond
    // quotes, which Add() callers never use in registry names — but be
    // safe for injected gauges.
    for (char c : name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\":[";
    bool first = true;
    for (const Sample& sample : ring) {
      if (!first) out += ",";
      first = false;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "{\"ts_us\":%lld,\"value\":%.6g}",
                    static_cast<long long>(sample.ts_us), sample.value);
      out += buf;
    }
    out += "]";
  }
  out += "}}";
  return out;
}

std::string_view HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk: return "OK";
    case HealthStatus::kWarn: return "WARN";
    case HealthStatus::kFail: return "FAIL";
  }
  return "?";
}

HealthWatchdog::HealthWatchdog(TimeSeriesRecorder* recorder, EventLog* events,
                               MetricsRegistry* metrics)
    : recorder_(recorder), events_(events), metrics_(metrics) {}

void HealthWatchdog::AddRule(SloRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  HealthRow row;
  row.rule = rule.name;
  row.warn_threshold = rule.warn_threshold;
  row.fail_threshold = rule.fail_threshold;
  row.description = rule.description;
  rules_.push_back(std::move(rule));
  states_.push_back(std::move(row));
}

double HealthWatchdog::RuleValue(const SloRule& rule, bool* has_data) const {
  *has_data = true;
  switch (rule.kind) {
    case SloRule::Kind::kGauge: {
      TimeSeriesRecorder::Sample sample;
      if (!recorder_->Latest(rule.metric, &sample)) {
        *has_data = false;
        return 0;
      }
      return sample.value;
    }
    case SloRule::Kind::kDelta:
      return recorder_->DeltaOverWindow(rule.metric, rule.window);
    case SloRule::Kind::kRatio: {
      double denominator = 0;
      for (const std::string& name : rule.denominators) {
        denominator += recorder_->DeltaOverWindow(name, rule.window);
      }
      if (denominator < rule.min_activity) {
        *has_data = false;  // not enough traffic to judge
        return 0;
      }
      return recorder_->DeltaOverWindow(rule.metric, rule.window) /
             denominator;
    }
    case SloRule::Kind::kProbe: {
      if (!rule.probe) {
        *has_data = false;
        return 0;
      }
      return rule.probe(has_data);
    }
  }
  *has_data = false;
  return 0;
}

void HealthWatchdog::Evaluate(common::Micros now) {
  struct Transition {
    std::string rule;
    HealthStatus from;
    HealthStatus to;
    double value;
  };
  std::vector<Transition> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < rules_.size(); ++i) {
      const SloRule& rule = rules_[i];
      HealthRow& row = states_[i];
      bool has_data = false;
      double value = RuleValue(rule, &has_data);
      HealthStatus status = HealthStatus::kOk;
      if (has_data) {
        if (rule.above_is_bad) {
          if (value > rule.fail_threshold) status = HealthStatus::kFail;
          else if (value > rule.warn_threshold) status = HealthStatus::kWarn;
        } else {
          if (value < rule.fail_threshold) status = HealthStatus::kFail;
          else if (value < rule.warn_threshold) status = HealthStatus::kWarn;
        }
      }
      row.value = value;
      if (row.since_us == 0) row.since_us = now;
      if (status != row.status) {
        fired.push_back({rule.name, row.status, status, value});
        row.status = status;
        row.since_us = now;
        ++transitions_;
      }
    }
  }
  // Event/metric emission outside mu_ — the event log has its own lock.
  for (const Transition& t : fired) {
    char value_buf[32];
    std::snprintf(value_buf, sizeof(value_buf), "%.4g", t.value);
    if (events_ != nullptr) {
      events_->Emit(t.to == HealthStatus::kFail ? EventLevel::kError
                    : t.to == HealthStatus::kWarn ? EventLevel::kWarn
                                                  : EventLevel::kInfo,
                    "health", "health.transition",
                    {{"rule", t.rule},
                     {"from", std::string(HealthStatusName(t.from))},
                     {"to", std::string(HealthStatusName(t.to))},
                     {"value", value_buf}});
    }
    if (metrics_ != nullptr) {
      metrics_->Add("health.transitions{rule=" + t.rule + ",to=" +
                    std::string(HealthStatusName(t.to)) + "}");
    }
  }
}

std::vector<HealthRow> HealthWatchdog::States() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_;
}

uint64_t HealthWatchdog::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

}  // namespace polaris::obs
