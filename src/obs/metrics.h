#ifndef POLARIS_OBS_METRICS_H_
#define POLARIS_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace polaris::obs {

/// Immutable copy of one latency histogram. Buckets are cumulative-free:
/// `counts[i]` holds the number of observations v with
/// `bounds[i-1] < v <= bounds[i]` (counts.back() is the overflow bucket for
/// values above the last bound).
struct HistogramSnapshot {
  std::vector<common::Micros> bounds;
  std::vector<uint64_t> counts;  // size = bounds.size() + 1
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;

  /// Estimated quantile (in [0,1]) of the observations; -1 when empty.
  /// Finds the bucket holding the target rank and interpolates linearly
  /// within it, clamping the bucket edges to the observed min/max so a
  /// coarse bucket does not overstate the value; quantiles landing in the
  /// overflow bucket report the max.
  int64_t ApproxQuantile(double quantile) const;
};

/// Fixed-bucket histogram accumulator. Unlocked — callers provide
/// synchronization (MetricsRegistry holds one per name under its mutex;
/// the Query Store holds them per fingerprint/interval under its own).
/// All instances share the registry's bucket bounds so snapshots merge.
class Histogram {
 public:
  void Observe(common::Micros value);
  /// Adds every bucket/statistic of `other` into this histogram (used to
  /// merge interval histograms into a trailing baseline).
  void Merge(const Histogram& other);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }

 private:
  std::vector<uint64_t> counts_;  // lazily sized bounds+1; empty until first
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Value of a counter, 0 when absent.
  uint64_t counter(const std::string& name) const;
  /// Sum of all counters whose name starts with `prefix`.
  uint64_t CounterSum(const std::string& prefix) const;
  /// Multi-line human-readable dump (bench drivers print this).
  std::string ToString() const;

  /// Prometheus text exposition format (version 0.0.4): counters as
  /// `counter` metrics, histograms as cumulative-bucket `histogram`
  /// metrics with `le` labels plus `_sum`/`_count`. Dots in metric names
  /// become underscores ("store.get.ops" -> "store_get_ops").
  std::string ToPrometheusText() const;
};

/// Thread-safe named counters + fixed-bucket latency histograms — the single
/// place every subsystem (storage stack, data cache, DCP scheduler, STO)
/// reports what it did, so fault-injection runs leave auditable evidence
/// (retries absorbed, latencies paid) instead of per-component ad-hoc stats.
///
/// Names are dotted paths by convention: "store.get.retries",
/// "cache.hits", "dcp.task_retries", "sto.compactions".
class MetricsRegistry {
 public:
  /// Increments counter `name` by `delta` (creating it at 0 first).
  void Add(const std::string& name, uint64_t delta = 1);

  /// Records one latency observation (microseconds) in histogram `name`.
  void Observe(const std::string& name, common::Micros value);

  MetricsSnapshot Snapshot() const;
  void Reset();

  /// The fixed bucket upper bounds shared by every histogram, in micros:
  /// roughly logarithmic from 100us to 10s.
  static const std::vector<common::Micros>& BucketBounds();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace polaris::obs

#endif  // POLARIS_OBS_METRICS_H_
