#ifndef POLARIS_OBS_TIME_SERIES_H_
#define POLARIS_OBS_TIME_SERIES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace polaris::obs {

/// Bounded per-metric ring buffers of periodic MetricsRegistry samples —
/// the history behind sys.dm_metrics_history and the input the health
/// watchdog evaluates its SLO rules over.
///
/// Each SampleOnce snapshots the registry: counters are recorded at their
/// current value (rules compute windowed deltas); histograms are flattened
/// into four derived series (`<name>.count`, `.p50`, `.p95`, `.p99`).
/// Callers may inject extra gauge readings (active transactions, STO
/// backlog, tracer occupancy) that have no registry counter.
///
/// Thread-safe; the engine drives it from a background sampler thread
/// (default period 1s) and tests call SampleOnce directly.
class TimeSeriesRecorder {
 public:
  struct Sample {
    common::Micros ts_us = 0;
    double value = 0;
  };

  /// `registry` must outlive the recorder.
  explicit TimeSeriesRecorder(MetricsRegistry* registry,
                              size_t capacity_per_series = 512);

  /// Takes one sample of every metric (plus `gauges`) stamped `now`.
  void SampleOnce(common::Micros now,
                  const std::vector<std::pair<std::string, double>>& gauges =
                      {});

  std::vector<std::string> SeriesNames() const;
  std::vector<Sample> Series(const std::string& name) const;

  /// Latest recorded value of `name`; false when the series is absent.
  bool Latest(const std::string& name, Sample* out) const;

  /// value(newest) - value(max(0, newest - window)) over `name`'s ring;
  /// 0 when the series is absent or has a single point. Negative deltas
  /// (registry reset) clamp to 0.
  double DeltaOverWindow(const std::string& name, size_t window) const;

  /// Samples taken since construction.
  uint64_t samples_taken() const;

  /// {"series": {"<name>": [{"ts_us":..,"value":..}, ...], ...}}
  std::string ToJson() const;

 private:
  MetricsRegistry* registry_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::map<std::string, std::deque<Sample>> series_;
  uint64_t samples_ = 0;
};

enum class HealthStatus { kOk = 0, kWarn, kFail };

std::string_view HealthStatusName(HealthStatus status);

/// One declarative SLO rule evaluated against the recorder after each
/// sample. Four input shapes cover the built-in rules:
///  * kGauge — the latest sample of `metric` (histogram quantiles are
///    gauges too: recorded series "<hist>.p99").
///  * kDelta — windowed increase of counter `metric`.
///  * kRatio — windowed increase of `metric` divided by the summed
///    windowed increase of `denominators` (rate over window).
///  * kProbe — `probe` computes the value from arbitrary live state (the
///    Query Store regression rule); it sets *has_data=false to abstain.
/// Direction: with `above_is_bad`, value > fail_threshold is FAIL and
/// value > warn_threshold is WARN; inverted otherwise (floors, e.g. cache
/// hit rate). A rule with too little activity (ratio denominator delta
/// below `min_activity`, a missing series, or an abstaining probe)
/// reports OK.
struct SloRule {
  std::string name;
  std::string description;
  enum class Kind { kGauge, kDelta, kRatio, kProbe };
  Kind kind = Kind::kGauge;
  std::string metric;
  std::vector<std::string> denominators;  // kRatio only
  std::function<double(bool* has_data)> probe;  // kProbe only
  size_t window = 10;                     // samples, kDelta/kRatio
  bool above_is_bad = true;
  double warn_threshold = 0;
  double fail_threshold = 0;
  double min_activity = 1;
};

struct HealthRow {
  std::string rule;
  HealthStatus status = HealthStatus::kOk;
  double value = 0;
  double warn_threshold = 0;
  double fail_threshold = 0;
  /// When the rule entered its current status.
  common::Micros since_us = 0;
  std::string description;
};

/// Evaluates SLO rules over the recorder each sample, keeps the current
/// verdict per rule (sys.dm_health) and fires a structured event on every
/// status transition. `recorder` must outlive the watchdog; `events` and
/// `metrics` may be null.
class HealthWatchdog {
 public:
  HealthWatchdog(TimeSeriesRecorder* recorder, EventLog* events = nullptr,
                 MetricsRegistry* metrics = nullptr);

  void AddRule(SloRule rule);

  /// Re-evaluates every rule against the recorder's current state.
  void Evaluate(common::Micros now);

  std::vector<HealthRow> States() const;

  /// Status transitions observed since construction.
  uint64_t transitions() const;

 private:
  double RuleValue(const SloRule& rule, bool* has_data) const;

  TimeSeriesRecorder* recorder_;
  EventLog* events_;
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  std::vector<SloRule> rules_;
  std::vector<HealthRow> states_;  // parallel to rules_
  uint64_t transitions_ = 0;
};

}  // namespace polaris::obs

#endif  // POLARIS_OBS_TIME_SERIES_H_
