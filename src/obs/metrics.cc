#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace polaris::obs {

const std::vector<common::Micros>& MetricsRegistry::BucketBounds() {
  static const std::vector<common::Micros> kBounds = {
      100,        250,        500,        1'000,     2'500,
      5'000,      10'000,     25'000,     50'000,    100'000,
      250'000,    500'000,    1'000'000,  2'500'000, 5'000'000,
      10'000'000};
  return kBounds;
}

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Observe(const std::string& name, common::Micros value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& h = histograms_[name];
  if (h.counts.empty()) h.counts.assign(BucketBounds().size() + 1, 0);
  const auto& bounds = BucketBounds();
  size_t bucket =
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  ++h.counts[bucket];
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters = counters_;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot out;
    out.bounds = BucketBounds();
    out.counts = h.counts;
    out.count = h.count;
    out.sum = h.sum;
    out.min = h.min;
    out.max = h.max;
    snapshot.histograms.emplace(name, std::move(out));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

int64_t HistogramSnapshot::ApproxQuantile(double quantile) const {
  if (count == 0) return -1;
  uint64_t target = static_cast<uint64_t>(quantile * static_cast<double>(count));
  if (target >= count) target = count - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > target) {
      return i < bounds.size() ? bounds[i] : max;
    }
  }
  return max;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::CounterSum(const std::string& prefix) const {
  uint64_t total = 0;
  for (auto it = counters.lower_bound(prefix);
       it != counters.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second;
  }
  return total;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << "== counters ==\n";
  for (const auto& [name, value] : counters) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "== latency histograms (us) ==\n";
  for (const auto& [name, h] : histograms) {
    out << "  " << name << ": count=" << h.count;
    if (h.count > 0) {
      out << " min=" << h.min << " max=" << h.max
          << " mean=" << (h.sum / static_cast<int64_t>(h.count))
          << " p50<=" << h.ApproxQuantile(0.5)
          << " p99<=" << h.ApproxQuantile(0.99);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace polaris::obs
