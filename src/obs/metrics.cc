#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace polaris::obs {

const std::vector<common::Micros>& MetricsRegistry::BucketBounds() {
  static const std::vector<common::Micros> kBounds = {
      100,        250,        500,        1'000,     2'500,
      5'000,      10'000,     25'000,     50'000,    100'000,
      250'000,    500'000,    1'000'000,  2'500'000, 5'000'000,
      10'000'000};
  return kBounds;
}

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Histogram::Observe(common::Micros value) {
  const auto& bounds = MetricsRegistry::BucketBounds();
  if (counts_.empty()) counts_.assign(bounds.size() + 1, 0);
  size_t bucket =
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  ++counts_[bucket];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(other.counts_.size(), 0);
  for (size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.bounds = MetricsRegistry::BucketBounds();
  out.counts = counts_.empty()
                   ? std::vector<uint64_t>(out.bounds.size() + 1, 0)
                   : counts_;
  out.count = count_;
  out.sum = sum_;
  out.min = min_;
  out.max = max_;
  return out;
}

void MetricsRegistry::Observe(const std::string& name, common::Micros value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Observe(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters = counters_;
  for (const auto& [name, h] : histograms_) {
    snapshot.histograms.emplace(name, h.Snapshot());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

int64_t HistogramSnapshot::ApproxQuantile(double quantile) const {
  if (count == 0) return -1;
  uint64_t target = static_cast<uint64_t>(quantile * static_cast<double>(count));
  if (target >= count) target = count - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (seen + counts[i] <= target) {
      seen += counts[i];
      continue;
    }
    // Overflow bucket has no upper bound to interpolate toward; the max is
    // the only honest answer (preserves the pre-interpolation behavior).
    if (i >= bounds.size()) return max;
    // Interpolate within the winning bucket. Bucket edges are clamped to
    // the observed min/max, so e.g. a single observation reports itself
    // rather than its bucket's upper bound.
    int64_t lo = i == 0 ? 0 : bounds[i - 1];
    lo = std::max(lo, min);
    int64_t hi = std::min<int64_t>(bounds[i], max);
    if (hi <= lo) return hi;
    double fraction = static_cast<double>(target - seen + 1) /
                      static_cast<double>(counts[i]);
    return lo + static_cast<int64_t>(fraction *
                                     static_cast<double>(hi - lo));
  }
  return max;
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::CounterSum(const std::string& prefix) const {
  uint64_t total = 0;
  for (auto it = counters.lower_bound(prefix);
       it != counters.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second;
  }
  return total;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted paths map onto
/// that by replacing every other character with '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Label values must escape backslash, double-quote and newline per the
/// text exposition format 0.0.4.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Registry names may carry labels as `base{key=value,key=value}` (values
/// unquoted; no commas or '=' inside). The exporter splits them so the
/// exposition carries real labels instead of a mangled flat name.
struct ParsedMetricName {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};

ParsedMetricName ParseMetricName(const std::string& name) {
  ParsedMetricName parsed;
  size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    parsed.base = name;
    return parsed;
  }
  parsed.base = name.substr(0, brace);
  std::string inner = name.substr(brace + 1, name.size() - brace - 2);
  size_t pos = 0;
  while (pos < inner.size()) {
    size_t comma = inner.find(',', pos);
    if (comma == std::string::npos) comma = inner.size();
    std::string pair = inner.substr(pos, comma - pos);
    size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      parsed.labels.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    pos = comma + 1;
  }
  return parsed;
}

/// Renders `{k="v",...}` with values escaped; `extra` (the histogram `le`
/// label) is appended last. Empty when there are no labels at all.
std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra_key = {}, const std::string& extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += PrometheusName(key) + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    ParsedMetricName parsed = ParseMetricName(name);
    std::string pname = PrometheusName(parsed.base);
    out << "# TYPE " << pname << " counter\n";
    out << pname << RenderLabels(parsed.labels) << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    ParsedMetricName parsed = ParseMetricName(name);
    std::string pname = PrometheusName(parsed.base);
    out << "# TYPE " << pname << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out << pname << "_bucket"
          << RenderLabels(parsed.labels, "le", std::to_string(h.bounds[i]))
          << " " << cumulative << "\n";
    }
    out << pname << "_bucket" << RenderLabels(parsed.labels, "le", "+Inf")
        << " " << h.count << "\n";
    out << pname << "_sum" << RenderLabels(parsed.labels) << " " << h.sum
        << "\n";
    out << pname << "_count" << RenderLabels(parsed.labels) << " " << h.count
        << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream out;
  out << "== counters ==\n";
  for (const auto& [name, value] : counters) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "== latency histograms (us) ==\n";
  for (const auto& [name, h] : histograms) {
    out << "  " << name << ": count=" << h.count;
    if (h.count > 0) {
      out << " min=" << h.min << " max=" << h.max
          << " mean=" << (h.sum / static_cast<int64_t>(h.count))
          << " p50~=" << h.ApproxQuantile(0.5)
          << " p99~=" << h.ApproxQuantile(0.99);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace polaris::obs
