#include "obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace polaris::obs {

namespace {

thread_local Tracer* tls_tracer = nullptr;

std::atomic<uint32_t> g_next_thread_id{1};

/// Escapes a string for inclusion in a JSON string literal.
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer(common::Clock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

common::Micros Tracer::NowUs() const {
  if (clock_ != nullptr) return clock_->Now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint32_t Tracer::ThisThreadId() {
  thread_local uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer* Tracer::CurrentThreadTracer() { return tls_tracer; }

void Tracer::Record(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_ && !full_) {
    ring_.push_back(std::move(record));
    if (ring_.size() == capacity_) full_ = true;
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  full_ = false;
  dropped_ = 0;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (!full_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::vector<SpanRecord> Tracer::Trace(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (auto& span : Snapshot()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::string Tracer::ExportChromeTrace() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out;
  out.reserve(256 + spans.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name);
    out += "\",\"cat\":\"polaris\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(span.start_us);
    out += ",\"dur\":";
    out += std::to_string(span.duration_us());
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(span.thread_id);
    out += ",\"args\":{\"trace_id\":\"";
    out += std::to_string(span.trace_id);
    out += "\",\"span_id\":\"";
    out += std::to_string(span.span_id);
    out += "\",\"parent_id\":\"";
    out += std::to_string(span.parent_id);
    out += "\"";
    if (span.txn_id != 0) {
      out += ",\"txn_id\":\"";
      out += std::to_string(span.txn_id);
      out += "\"";
    }
    for (const auto& [key, value] : span.attrs) {
      out += ",\"";
      AppendJsonEscaped(&out, key);
      out += "\":\"";
      AppendJsonEscaped(&out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

// --- TraceBinding -----------------------------------------------------------

TraceBinding::TraceBinding()
    : tracer_(tls_tracer), context_(common::CurrentTraceContext()) {}

TraceBinding::Scope::Scope(const TraceBinding& binding)
    : saved_tracer_(tls_tracer), ctx_scope_(binding.context_) {
  tls_tracer = binding.tracer_;
}

TraceBinding::Scope::~Scope() { tls_tracer = saved_tracer_; }

// --- Span -------------------------------------------------------------------

Span::Span(Tracer* tracer, const char* name) { Start(tracer, name, false); }

Span::Span(Tracer* tracer, const char* name, RootTag) {
  Start(tracer, name, true);
}

void Span::Start(Tracer* tracer, const char* name, bool root) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  saved_tracer_ = tls_tracer;
  saved_context_ = common::CurrentTraceContext();
  context_ = saved_context_;
  if (root || !context_.active()) {
    context_.trace_id = tracer->NextId();
    record_.parent_id = 0;
    if (root) context_.txn_id = 0;
  } else {
    record_.parent_id = context_.span_id;
  }
  context_.span_id = tracer->NextId();
  record_.trace_id = context_.trace_id;
  record_.span_id = context_.span_id;
  record_.name = name;
  record_.start_us = tracer->NowUs();
  record_.thread_id = Tracer::ThisThreadId();
  tls_tracer = tracer;
  common::MutableCurrentTraceContext() = context_;
}

void Span::AddAttr(const char* key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.attrs.emplace_back(key, std::move(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  record_.end_us = tracer_->NowUs();
  // The transaction layer may have filled in txn_id after the span opened
  // (e.g. a statement span around Begin); pick up the final value.
  record_.txn_id = common::CurrentTraceContext().txn_id;
  tracer_->Record(std::move(record_));
  tls_tracer = saved_tracer_;
  common::MutableCurrentTraceContext() = saved_context_;
  tracer_ = nullptr;
}

Span::~Span() { End(); }

}  // namespace polaris::obs
