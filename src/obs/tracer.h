#ifndef POLARIS_OBS_TRACER_H_
#define POLARIS_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/trace_context.h"

namespace polaris::obs {

using common::TraceContext;

/// One finished span, as stored in the tracer's ring buffer.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root span
  uint64_t txn_id = 0;     // 0 = not attributed to a transaction
  std::string name;
  common::Micros start_us = 0;
  common::Micros end_us = 0;
  /// Small sequential id of the recording thread (Perfetto "tid").
  uint32_t thread_id = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  common::Micros duration_us() const { return end_us - start_us; }
};

/// Low-overhead, thread-safe span recorder: the engine-wide tracing
/// backend behind EXPLAIN ANALYZE, the shell's TRACE command and the
/// Perfetto export. Spans are opened/closed via the RAII `Span` below;
/// finished spans land in a bounded ring buffer (oldest evicted first) so
/// an always-on tracer cannot grow without bound.
///
/// Disabled (the default) it costs one relaxed atomic load per would-be
/// span — cheap enough to leave the instrumentation compiled into every
/// hot path (acceptance: < 5% on micro_manifest_replay).
///
/// Span identity propagates through `common::TraceContext`: a thread-local
/// (trace_id, span_id, txn_id) triple that `Span` maintains, the thread
/// pool carries across Submit, and log lines are stamped with.
class Tracer {
 public:
  /// `clock` must outlive the tracer; null falls back to a steady wall
  /// clock so standalone tracers (tests, tools) work unwired.
  explicit Tracer(common::Clock* clock = nullptr, size_t capacity = 8192);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Drops all recorded spans (keeps id counters running).
  void Clear();

  /// Copy of the ring buffer, oldest span first.
  std::vector<SpanRecord> Snapshot() const;

  /// All finished spans of one trace, oldest first.
  std::vector<SpanRecord> Trace(uint64_t trace_id) const;

  /// Spans evicted from the ring buffer since construction/Clear.
  uint64_t dropped_spans() const;

  /// Finished spans currently held in the ring (occupancy); together with
  /// dropped_spans() this makes truncated traces detectable.
  size_t size() const;

  /// Serializes every recorded span as Chrome `trace_event` JSON
  /// ("X" complete events, ts/dur in microseconds) — loads directly in
  /// Perfetto / chrome://tracing.
  std::string ExportChromeTrace() const;

  /// The tracer ambient on the calling thread (set by the innermost
  /// explicitly-bound Span; carried across the thread pool). Null when no
  /// span is open. Lets deep layers (manifest IO, storage decorators)
  /// open child spans without plumbing a Tracer* through every signature.
  static Tracer* CurrentThreadTracer();

  common::Clock* clock() const { return clock_; }

 private:
  friend class Span;
  friend class TraceBinding;

  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) |
           (uint64_t{1} << 63);  // never 0, never collides after wrap
  }
  common::Micros NowUs() const;
  static uint32_t ThisThreadId();
  void Record(SpanRecord&& record);

  common::Clock* clock_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<SpanRecord> ring_;  // insertion order, wraps at capacity_
  size_t head_ = 0;               // next write position once full
  bool full_ = false;
  uint64_t dropped_ = 0;
};

/// Captures the calling thread's {ambient tracer, trace context} so work
/// handed to another thread continues the same trace. The thread pool
/// captures one per Submit and installs it around the work function.
class TraceBinding {
 public:
  TraceBinding();  // captures from the current thread

  /// Installs the captured binding for the scope of this object on the
  /// (worker) thread that runs it.
  class Scope {
   public:
    explicit Scope(const TraceBinding& binding);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* saved_tracer_;
    common::ScopedTraceContext ctx_scope_;
  };

 private:
  Tracer* tracer_;
  TraceContext context_;
};

/// RAII span. Two binding modes:
///  * `Span(tracer, name)` — explicit tracer; also installs it as the
///    thread's ambient tracer for the span's scope (root spans of a
///    statement or STO job use this).
///  * `Span(name)` — ambient tracer (deep layers); inert when no traced
///    work is in progress on this thread.
/// A span opened while the tracer is disabled is inert: no allocation, no
/// context mutation.
class Span {
 public:
  struct RootTag {};
  static constexpr RootTag kRoot{};

  explicit Span(const char* name) : Span(Tracer::CurrentThreadTracer(), name) {}
  Span(Tracer* tracer, const char* name);
  /// Starts a new trace (no parent even if a context is active) — STO
  /// background jobs and EXPLAIN ANALYZE roots.
  Span(Tracer* tracer, const char* name, RootTag);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }
  const TraceContext& context() const { return context_; }

  void AddAttr(const char* key, std::string value);
  void AddAttr(const char* key, const char* value) {
    AddAttr(key, std::string(value));
  }
  void AddAttr(const char* key, int64_t value) {
    AddAttr(key, std::to_string(value));
  }
  void AddAttr(const char* key, uint64_t value) {
    AddAttr(key, std::to_string(value));
  }
  void AddAttr(const char* key, uint32_t value) {
    AddAttr(key, std::to_string(value));
  }

  /// Finishes the span early (records it and restores the previous
  /// context); the destructor is then a no-op.
  void End();

 private:
  void Start(Tracer* tracer, const char* name, bool root);

  Tracer* tracer_ = nullptr;       // null when inert or ended
  Tracer* saved_tracer_ = nullptr;
  TraceContext saved_context_;
  TraceContext context_;
  SpanRecord record_;
};

}  // namespace polaris::obs

#endif  // POLARIS_OBS_TRACER_H_
