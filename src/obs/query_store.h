#ifndef POLARIS_OBS_QUERY_STORE_H_
#define POLARIS_OBS_QUERY_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/resource_usage.h"
#include "obs/metrics.h"

namespace polaris::obs {

struct QueryStoreOptions {
  /// Enabled by default: the overhead budget (< 5% on
  /// bench/micro_txn_contention) is asserted in that bench.
  bool enabled = true;
  /// Bounded heavy-hitter set: distinct fingerprints tracked. Statements
  /// beyond the cap fold into a synthetic "(other)" entry so the store
  /// never grows without bound.
  size_t max_fingerprints = 256;
  /// Width of one aggregation interval on the engine clock.
  common::Micros interval_micros = 60'000'000;
  /// Closed intervals retained per fingerprint (current + trailing
  /// baseline).
  size_t max_intervals = 8;
  /// Minimum samples in both the current interval and the trailing
  /// baseline before the latency-regression probe will judge a
  /// fingerprint.
  uint64_t regression_min_samples = 16;
};

/// One interval bucket of a fingerprint's history (sys.query_store_intervals).
struct QueryStoreIntervalRow {
  uint64_t fingerprint_id = 0;
  std::string fingerprint;
  int64_t interval_start_us = 0;
  uint64_t count = 0;
  uint64_t errors = 0;  // every non-ok outcome
  int64_t wall_p50_us = 0;
  int64_t wall_p99_us = 0;
  int64_t total_wall_us = 0;
  uint64_t store_ops = 0;
  uint64_t store_bytes = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  /// Blocked time (all wait classes summed) inside this interval.
  int64_t wait_us = 0;
};

/// Cumulative per-fingerprint aggregate (sys.query_store).
struct QueryStoreEntryRow {
  uint64_t fingerprint_id = 0;
  std::string fingerprint;
  std::string kind;  // statement kind of the first recording
  uint64_t count = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t conflicts = 0;
  uint64_t shed = 0;
  uint64_t killed = 0;
  uint64_t expired = 0;
  int64_t wall_p50_us = 0;
  int64_t wall_p99_us = 0;
  int64_t total_wall_us = 0;
  int64_t total_queue_us = 0;
  int64_t total_commit_us = 0;
  uint64_t store_read_ops = 0;
  uint64_t store_write_ops = 0;
  uint64_t store_read_bytes = 0;
  uint64_t store_write_bytes = 0;
  uint64_t store_retries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t statement_retries = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  /// Blocked time across all wait classes, and the class this fingerprint
  /// spent the most time waiting on ("" when it never waited).
  int64_t total_wait_us = 0;
  std::string top_wait_class;
  int64_t top_wait_us = 0;
  int64_t first_seen_us = 0;
  int64_t last_seen_us = 0;
};

/// The workload repository (SQL Server Query Store analogue): per-
/// statement-fingerprint resource aggregates, cumulative and bucketed
/// into engine-clock intervals, with a latency-regression probe the SLO
/// watchdog polls. Thread-safe; SqlSession records one row per statement.
class QueryStore {
 public:
  /// `clock` stamps recordings and interval boundaries; falls back to
  /// real steady time when null (engine passes its own clock).
  explicit QueryStore(common::Clock* clock = nullptr,
                      QueryStoreOptions options = {});

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  const QueryStoreOptions& options() const { return options_; }

  /// Aggregates one finished statement. `kind` is the statement kind of
  /// the SQL surface ("SELECT", "INSERT", ...); `usage.wall_us` feeds the
  /// latency histograms. No-op while disabled.
  void Record(const std::string& fingerprint, std::string_view kind,
              common::StatementOutcome outcome,
              const common::ResourceUsageSnapshot& usage);

  /// Cumulative per-fingerprint aggregates, heaviest (by total wall time)
  /// first.
  std::vector<QueryStoreEntryRow> Snapshot() const;

  /// Per-fingerprint interval buckets, newest interval first within each
  /// fingerprint.
  std::vector<QueryStoreIntervalRow> IntervalSnapshot() const;

  /// Top `n` fingerprints by total wall time.
  std::vector<QueryStoreEntryRow> TopByWallTime(size_t n) const;

  struct Regression {
    std::string fingerprint;
    double ratio = 0;          // current p99 / baseline p99
    int64_t current_p99_us = 0;
    int64_t baseline_p99_us = 0;
    uint64_t current_samples = 0;
    uint64_t baseline_samples = 0;
  };

  /// The worst current-interval-p99 vs trailing-baseline-p99 ratio across
  /// fingerprints with enough samples on both sides; false when no
  /// fingerprint qualifies. This is the SLO watchdog's probe input.
  bool WorstRegression(Regression* out) const;

  /// Sum of recorded statement wall time across all fingerprints — the
  /// denominator of the watchdog's wait-share rule.
  int64_t total_wall_us() const;

  /// Statements recorded since construction (including folded ones).
  uint64_t recorded_total() const;
  /// Statements folded into "(other)" because the fingerprint set was full.
  uint64_t overflow_total() const;
  /// Distinct fingerprints currently tracked.
  uint64_t fingerprints() const;

  void Reset();

 private:
  struct Interval {
    int64_t start_us = 0;
    uint64_t count = 0;
    uint64_t errors = 0;
    Histogram wall;
    uint64_t store_ops = 0;
    uint64_t store_bytes = 0;
    uint64_t rows_scanned = 0;
    uint64_t rows_returned = 0;
    int64_t wait_us = 0;
  };

  struct Entry {
    std::string kind;
    uint64_t outcomes[6] = {0, 0, 0, 0, 0, 0};
    Histogram wall;
    common::ResourceUsageSnapshot totals;
    int64_t first_seen_us = 0;
    int64_t last_seen_us = 0;
    std::deque<Interval> intervals;  // oldest first
  };

  int64_t NowMicros() const;
  QueryStoreEntryRow EntryRow(const std::string& fingerprint,
                              const Entry& entry) const;

  common::Clock* clock_;
  QueryStoreOptions options_;
  std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t recorded_ = 0;
  uint64_t overflow_ = 0;
};

}  // namespace polaris::obs

#endif  // POLARIS_OBS_QUERY_STORE_H_
