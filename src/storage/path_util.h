#ifndef POLARIS_STORAGE_PATH_UTIL_H_
#define POLARIS_STORAGE_PATH_UTIL_H_

#include <cstdint>
#include <string>

namespace polaris::storage {

/// OneLake-style path layout (paper §2.2 / §5.4): all files of a table live
/// under a common data path; manifests and checkpoints under sibling
/// prefixes; the published Delta log in a user-visible location.
///
///   tables/<table_id>/data/<guid>.parquet
///   tables/<table_id>/data/<guid>.dv
///   tables/<table_id>/manifests/<guid>.manifest
///   tables/<table_id>/checkpoints/<seq>.checkpoint
///   published/<table_name>/_delta_log/<version>.json
class PathUtil {
 public:
  static std::string TableRoot(int64_t table_id);
  static std::string DataDir(int64_t table_id);
  static std::string ManifestDir(int64_t table_id);
  static std::string CheckpointDir(int64_t table_id);

  static std::string DataFilePath(int64_t table_id, const std::string& guid);
  static std::string DeleteVectorPath(int64_t table_id,
                                      const std::string& guid);
  static std::string ManifestPath(int64_t table_id, const std::string& guid);
  static std::string CheckpointPath(int64_t table_id, uint64_t sequence_id);

  static std::string PublishedDeltaLogDir(const std::string& table_name);
  static std::string PublishedDeltaLogPath(const std::string& table_name,
                                           uint64_t version);

  /// Joins two path segments with exactly one '/'.
  static std::string Join(const std::string& a, const std::string& b);
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_PATH_UTIL_H_
