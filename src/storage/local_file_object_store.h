#ifndef POLARIS_STORAGE_LOCAL_FILE_OBJECT_STORE_H_
#define POLARIS_STORAGE_LOCAL_FILE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "storage/object_store.h"

namespace polaris::storage {

/// ObjectStore backed by a local directory — the durable stand-in for
/// OneLake/ADLS. Slots under the FaultInjection -> Retrying decorator
/// stack exactly like MemoryObjectStore.
///
/// Layout under `root`:
///   objects/<encoded path>.blob      committed blobs (one file each)
///   staged/<encoded path>.blocks/    one file per staged block
///   tmp/                             in-flight writes (guid-named)
///
/// Every blob file is self-describing: a header carries the blob kind,
/// creation time, generation counter and the committed block table,
/// followed by the concatenated payload. Because all metadata lives in
/// the same file as the data, a single write-temp + fsync + atomic
/// rename commits content and metadata together — a reader (or a
/// recovering process) sees either the old committed state or the new
/// one, never a mixture. Path segments are percent-encoded so arbitrary
/// blob paths map onto filesystem names without collisions.
///
/// On construction, leftover `staged/` and `tmp/` entries from a crashed
/// process are swept away: uncommitted blocks are invisible by contract,
/// so discarding them is exactly the abort semantics the block-blob
/// protocol promises (paper §4.3).
///
/// In read-only mode (replicas attaching to a live primary's directory)
/// the constructor neither sweeps nor creates anything — the primary's
/// in-flight staged blocks are its own state — and every mutating
/// operation returns FailedPrecondition. Reads remain safe against a
/// concurrent primary because commits are atomic renames: a Get sees
/// either the old or the new committed file, never a mixture.
class LocalFileObjectStore : public ObjectStore {
 public:
  /// `clock` stamps created_at; if null an internal SimClock is used.
  /// Construction cannot fail — check init_status() before use.
  explicit LocalFileObjectStore(std::string root,
                                common::Clock* clock = nullptr,
                                bool read_only = false);

  /// Non-OK when the directory layout could not be created or scanned.
  const common::Status& init_status() const { return init_status_; }

  const std::string& root() const { return root_; }

  bool read_only() const { return read_only_.load(std::memory_order_acquire); }

  /// Makes a read-only store writable — the storage half of replica
  /// promotion. Creates the staged/ and tmp/ working directories (a
  /// read-only open never made them) but deliberately does NOT sweep:
  /// the fenced ex-primary's staged blocks are dead-but-harmless state
  /// (uncommitted blocks are invisible by contract) and are swept by the
  /// next full reopen. Idempotent; no-op when already writable.
  common::Status ExitReadOnly();

  /// Largest created_at stamp across blobs found at open time (0 when
  /// empty). A reopening engine advances its virtual clock past this so
  /// GC's created_at comparisons stay monotone across restarts.
  common::Micros max_created_at() const { return max_created_at_.load(); }

  /// Staged block files swept away by the constructor (crash leftovers).
  uint64_t swept_staged_blocks() const { return swept_staged_blocks_; }

  /// Staged (uncommitted) block files currently on disk.
  uint64_t StagedBlockCount() const;

  common::Status Put(const std::string& path, std::string data) override;
  common::Result<std::string> Get(const std::string& path) override;
  common::Result<BlobInfo> Stat(const std::string& path) override;
  common::Status Delete(const std::string& path) override;
  common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) override;

  common::Status StageBlock(const std::string& path,
                            const std::string& block_id,
                            std::string data) override;
  common::Status CommitBlockList(
      const std::string& path,
      const std::vector<std::string>& block_ids) override;
  common::Status CommitBlockListIf(const std::string& path,
                                   const std::vector<std::string>& block_ids,
                                   uint64_t expected_generation) override;
  common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) override;

 private:
  struct Header {
    bool is_block_blob = false;
    common::Micros created_at = 0;
    uint64_t generation = 0;
    // (block id, payload size) in committed order.
    std::vector<std::pair<std::string, uint64_t>> blocks;
    size_t payload_offset = 0;
    uint64_t payload_size() const;
  };

  static common::Status ParseHeader(const std::string& content,
                                    const std::string& path, Header* header);

  /// Filesystem location of the committed blob file for `path`.
  std::string ObjectFile(const std::string& path) const;
  /// Filesystem directory holding `path`'s staged blocks.
  std::string StagedDir(const std::string& path) const;

  /// Serializes header+payload, writes to tmp/, fsyncs, atomically
  /// renames over `file` and fsyncs the parent directory. `crash_point`
  /// fires between fsync and rename (temp durable, commit not).
  common::Status WriteBlobFileLocked(
      const std::string& file, const Header& header,
      const std::vector<std::string>& block_payloads,
      const char* crash_point);

  common::Status CommitBlockListLocked(
      const std::string& path, const std::vector<std::string>& block_ids,
      std::optional<uint64_t> expected_generation);

  common::Status SweepAndScan();

  mutable std::mutex mu_;
  std::string root_;
  // Atomic because promotion flips it while reader/writer threads check
  // it outside mu_.
  std::atomic<bool> read_only_{false};
  std::unique_ptr<common::SimClock> owned_clock_;
  common::Clock* clock_;
  common::Status init_status_;
  std::atomic<common::Micros> max_created_at_{0};
  uint64_t swept_staged_blocks_ = 0;
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_LOCAL_FILE_OBJECT_STORE_H_
