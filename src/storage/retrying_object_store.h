#ifndef POLARIS_STORAGE_RETRYING_OBJECT_STORE_H_
#define POLARIS_STORAGE_RETRYING_OBJECT_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/wait_stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "storage/object_store.h"

namespace polaris::storage {

/// How RetryingObjectStore paces its attempts.
struct RetryPolicy {
  /// Total attempts per operation (first try included). 1 disables retries.
  uint32_t max_attempts = 5;
  /// Backoff before the first retry; doubles (see `backoff_multiplier`)
  /// each subsequent retry up to `max_backoff_micros`.
  common::Micros initial_backoff_micros = 1'000;
  common::Micros max_backoff_micros = 1'000'000;
  double backoff_multiplier = 2.0;
  /// Fraction of each computed delay that is randomized away (full delay at
  /// 0.0; anywhere in [delay/2, delay] at 0.5). Jitter is drawn from a
  /// seeded generator so runs are reproducible.
  double jitter_fraction = 0.5;
  uint64_t seed = 42;
};

/// ObjectStore decorator that absorbs transient storage failures with
/// bounded exponential backoff — the layer the paper's manifest protocol
/// (§3.2.2) and compute-failure story (§4.3) assume sits between the engine
/// and a flaky cloud store: staged blocks from failed attempts are simply
/// re-staged, and write-once / commit-block-list semantics make every
/// operation here safe to repeat.
///
/// Only genuinely transient errors are retried: Unavailable (throttling,
/// node loss) and timeout-shaped IOErrors. Semantic outcomes — AlreadyExists
/// on a write-once Put, NotFound, InvalidArgument / FailedPrecondition
/// (ETag or block-list precondition failures) — pass through untouched on
/// the first attempt so commit protocols above never see a spurious retry.
///
/// Backoff waits are issued through the injected Clock (`Advance`), so
/// virtual-time tests observe deterministic waits and real clocks can map
/// them to sleeps. When `metrics` is non-null, per-operation counts,
/// retries, exhaustions, attempts-per-op and latencies are recorded under
/// "store.<op>.*"; with no injected clock a wall clock backs the accounting
/// so it never silently reads 0.
///
/// Deadline-aware: the ambient `common::Deadline` (carried in the thread's
/// TraceContext) is checked before the first attempt and before every
/// retry; each backoff is capped at the remaining budget, and once the
/// budget is burned the operation fails with DeadlineExceeded — a terminal
/// code no layer retries.
class RetryingObjectStore : public ObjectStore {
 public:
  /// `base`, `clock` and `metrics` must outlive this store; `metrics` may
  /// be null.
  RetryingObjectStore(ObjectStore* base, common::Clock* clock,
                      RetryPolicy policy = {},
                      obs::MetricsRegistry* metrics = nullptr)
      : base_(base),
        clock_(clock),
        policy_(policy),
        metrics_(metrics),
        rng_(policy.seed) {}

  /// True when `status` models a transient infrastructure failure that a
  /// repeat of the same request may clear.
  static bool IsRetryable(const common::Status& status);

  /// Attaches a structured event log (must outlive this store); retry
  /// exhaustions are then emitted as `store.retry_exhausted` events.
  void set_event_log(obs::EventLog* events) { events_ = events; }

  /// Attaches the wait-event registry (may be null). Each attempt's
  /// in-flight time is then charged as STORE_IO and each backoff as
  /// RETRY_BACKOFF, both measured on the operation clock so virtual-time
  /// tests see injected latency deterministically.
  void set_wait_stats(common::WaitStats* waits) { wait_stats_ = waits; }

  /// Total retries issued across all operations since construction.
  uint64_t total_retries() const { return total_retries_.load(); }
  /// Operations that failed even after exhausting the retry budget.
  uint64_t exhausted_operations() const { return exhausted_.load(); }

  const RetryPolicy& policy() const { return policy_; }

  common::Status Put(const std::string& path, std::string data) override;
  common::Result<std::string> Get(const std::string& path) override;
  common::Result<BlobInfo> Stat(const std::string& path) override;
  common::Status Delete(const std::string& path) override;
  common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) override;
  common::Status StageBlock(const std::string& path,
                            const std::string& block_id,
                            std::string data) override;
  common::Status CommitBlockList(
      const std::string& path,
      const std::vector<std::string>& block_ids) override;
  common::Status CommitBlockListIf(const std::string& path,
                                   const std::vector<std::string>& block_ids,
                                   uint64_t expected_generation) override;
  common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) override;

 private:
  /// Runs `attempt` under the retry budget, recording metrics for `op` and
  /// — when a trace is active on this thread — a child span named
  /// "store.<op>" carrying `path` and the attempts/retries absorbed.
  common::Status Execute(const char* op, const std::string& path,
                         const std::function<common::Status()>& attempt);

  /// Jittered exponential backoff before retry number `retry` (1-based).
  common::Micros BackoffFor(uint32_t retry);

  ObjectStore* base_;
  common::Clock* clock_;
  RetryPolicy policy_;
  obs::MetricsRegistry* metrics_;
  obs::EventLog* events_ = nullptr;
  common::WaitStats* wait_stats_ = nullptr;
  std::mutex rng_mu_;
  common::Random rng_;
  std::atomic<uint64_t> total_retries_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_RETRYING_OBJECT_STORE_H_
