#ifndef POLARIS_STORAGE_CIRCUIT_BREAKER_STORE_H_
#define POLARIS_STORAGE_CIRCUIT_BREAKER_STORE_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "storage/object_store.h"

namespace polaris::storage {

struct CircuitBreakerOptions {
  /// Consecutive infrastructure failures (post-retry) that trip the
  /// breaker open. 0 = pass-through (the breaker never trips).
  uint32_t failure_threshold = 5;
  /// How long the breaker stays open before letting a probe through.
  common::Micros open_duration_micros = 5'000'000;
  /// Consecutive successful probes in half-open required to close again.
  uint32_t half_open_probes = 1;
};

/// ObjectStore decorator implementing the classic closed / open / half-open
/// circuit breaker. It sits on TOP of the retry layer so it observes
/// post-retry outcomes: a failure here means the retry budget was already
/// spent, i.e. storage is genuinely browned out, not just blinking.
///
///   closed    — ops pass through; consecutive failures are counted.
///   open      — ops fail fast with Unavailable (no storage traffic) until
///               `open_duration_micros` elapses.
///   half-open — one probe at a time is allowed through; success closes
///               the breaker, failure reopens it.
///
/// Only infrastructure failures (Unavailable, IOError) count against the
/// breaker. Semantic outcomes (NotFound, Conflict, FailedPrecondition, ...)
/// and client-budget outcomes (DeadlineExceeded, Cancelled) say nothing
/// about storage health and pass through uncounted.
///
/// Transitions emit `breaker.transition` events; the current state is
/// exposed as a gauge (`store.breaker.state`) feeding sys.dm_health.
class CircuitBreakerStore : public ObjectStore {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  static std::string_view StateName(State state);

  /// `base` and `clock` must outlive this store; `clock` may be null (a
  /// steady wall clock is used for the open-duration timer then).
  CircuitBreakerStore(ObjectStore* base, common::Clock* clock,
                      CircuitBreakerOptions options = {});

  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_event_log(obs::EventLog* events) { events_ = events; }

  /// Pass-through when the threshold is 0 (decorator present, logic off).
  bool enabled() const { return options_.failure_threshold > 0; }

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }
  uint64_t fast_failures() const { return fast_failures_.load(); }
  uint64_t times_opened() const { return times_opened_.load(); }

  ObjectStore* base() { return base_; }

  common::Status Put(const std::string& path, std::string data) override;
  common::Result<std::string> Get(const std::string& path) override;
  common::Result<BlobInfo> Stat(const std::string& path) override;
  common::Status Delete(const std::string& path) override;
  common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) override;
  common::Status StageBlock(const std::string& path,
                            const std::string& block_id,
                            std::string data) override;
  common::Status CommitBlockList(
      const std::string& path,
      const std::vector<std::string>& block_ids) override;
  common::Status CommitBlockListIf(const std::string& path,
                                   const std::vector<std::string>& block_ids,
                                   uint64_t expected_generation) override;
  common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) override;

 private:
  /// Gate + outcome bookkeeping around one wrapped operation.
  common::Status Execute(const char* op,
                         const std::function<common::Status()>& attempt);

  /// True when `status` indicates storage infrastructure trouble.
  static bool CountsAsFailure(const common::Status& status);

  /// Admission decision. Returns OK to let the op through (setting
  /// `*is_probe` in half-open), or the fail-fast Unavailable status.
  common::Status Admit(const char* op, bool* is_probe);

  void OnOutcome(bool is_probe, const common::Status& status);

  /// Must hold mu_. Changes state + emits breaker.transition.
  void TransitionLocked(State to, std::string_view why);

  common::Micros Now() const;

  ObjectStore* base_;
  common::Clock* clock_;
  CircuitBreakerOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLog* events_ = nullptr;

  std::mutex mu_;
  std::atomic<int> state_{static_cast<int>(State::kClosed)};
  uint32_t consecutive_failures_ = 0;  // guarded by mu_
  uint32_t probe_successes_ = 0;       // guarded by mu_
  bool probe_in_flight_ = false;       // guarded by mu_
  common::Micros open_until_us_ = 0;   // guarded by mu_
  std::atomic<uint64_t> fast_failures_{0};
  std::atomic<uint64_t> times_opened_{0};
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_CIRCUIT_BREAKER_STORE_H_
