#ifndef POLARIS_STORAGE_FAULT_INJECTION_STORE_H_
#define POLARIS_STORAGE_FAULT_INJECTION_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "storage/object_store.h"

namespace polaris::storage {

/// Which operations a fault policy applies to.
struct FaultPolicy {
  /// Probability in [0,1] that any write-side operation (Put, StageBlock,
  /// CommitBlockList, Delete) fails with Unavailable.
  double write_failure_probability = 0.0;
  /// Probability that any read-side operation (Get, Stat, List,
  /// GetCommittedBlockList) fails with Unavailable.
  double read_failure_probability = 0.0;
  /// If > 0, exactly the Nth operation (1-based, counting all ops) fails
  /// once with Unavailable, then the trigger disarms. Deterministic hooks
  /// for tests that need a failure at a precise point.
  uint64_t fail_nth_operation = 0;
  /// Injected latency per read-side operation, in microseconds, applied by
  /// advancing the injected clock before the wrapped call. Models a slow
  /// (browned-out) blob service rather than a dead one; lets deadline paths
  /// be exercised deterministically on virtual time.
  common::Micros read_latency_micros = 0;
  /// Injected latency per write-side operation, in microseconds.
  common::Micros write_latency_micros = 0;
  /// Heavy-tail mode: with this probability an operation takes
  /// `heavy_tail_latency_micros` instead of its base latency (p99-style
  /// stragglers, the Polaris workload-management motivation).
  double heavy_tail_probability = 0.0;
  common::Micros heavy_tail_latency_micros = 0;
};

/// ObjectStore decorator that injects transient failures, used to verify
/// the paper's claim that task restarts plus uncommitted-block discard make
/// write transactions resilient to compute/storage failures (§4.3).
///
/// Failures are injected *before* the wrapped call, so a failed operation
/// has no effect — modeling a request that never reached the service. Tests
/// that need torn writes can stage blocks directly.
class FaultInjectionStore : public ObjectStore {
 public:
  /// `clock` (optional) is advanced by the policy's injected latency; with
  /// a null clock latency injection is a no-op and only faults fire.
  FaultInjectionStore(ObjectStore* base, uint64_t seed,
                      common::Clock* clock = nullptr)
      : base_(base), rng_(seed), clock_(clock) {}

  void set_policy(const FaultPolicy& policy) {
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy;
  }

  /// Total operations that were failed by injection.
  uint64_t injected_failures() const { return injected_failures_.load(); }

  /// Total virtual microseconds of latency injected so far.
  uint64_t injected_latency_micros() const {
    return injected_latency_micros_.load();
  }

  /// The wrapped store.
  ObjectStore* base() { return base_; }

  common::Status Put(const std::string& path, std::string data) override;
  common::Result<std::string> Get(const std::string& path) override;
  common::Result<BlobInfo> Stat(const std::string& path) override;
  common::Status Delete(const std::string& path) override;
  common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) override;
  common::Status StageBlock(const std::string& path,
                            const std::string& block_id,
                            std::string data) override;
  common::Status CommitBlockList(
      const std::string& path,
      const std::vector<std::string>& block_ids) override;
  common::Status CommitBlockListIf(const std::string& path,
                                   const std::vector<std::string>& block_ids,
                                   uint64_t expected_generation) override;
  common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) override;

 private:
  /// Returns true if this operation should fail. On injection, records a
  /// "store.fault_injected" marker span (op + path) on the active trace.
  /// Also applies the policy's injected latency (clock-advancing) before
  /// deciding, so even failed attempts burn simulated time.
  bool ShouldFail(bool is_write, const char* op, const std::string& path);

  ObjectStore* base_;
  std::mutex mu_;
  FaultPolicy policy_;
  common::Random rng_;
  common::Clock* clock_;
  uint64_t op_counter_ = 0;
  std::atomic<uint64_t> injected_failures_{0};
  std::atomic<uint64_t> injected_latency_micros_{0};
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_FAULT_INJECTION_STORE_H_
