#ifndef POLARIS_STORAGE_OBJECT_STORE_H_
#define POLARIS_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace polaris::storage {

/// Metadata about a stored blob.
struct BlobInfo {
  std::string path;
  uint64_t size = 0;
  /// Time the blob was first created (micros on the store's clock). The
  /// garbage collector compares this with the minimum active transaction
  /// start time to decide whether an unreferenced file belongs to an
  /// aborted transaction (paper §5.3).
  common::Micros created_at = 0;
  /// Commit generation, the ETag analogue: 1 once the blob is first
  /// created (Put or first CommitBlockList), incremented by every later
  /// CommitBlockList. Durable stores persist it with the blob.
  uint64_t generation = 0;
};

/// Cloud object store abstraction modeling ADLS / OneLake (paper §3.2.2).
///
/// Two write paths are provided:
///  * Whole-blob `Put` for immutable data files (Parquet files, deletion
///    vectors, checkpoints). Blobs are write-once: a second Put to the same
///    path fails with AlreadyExists, mirroring how the engine never
///    overwrites data files.
///  * The Block Blob protocol for transaction manifest files:
///    `StageBlock` uploads an invisible block identified by a caller-chosen
///    unique ID; `CommitBlockList` atomically makes the blob's contents the
///    concatenation of the listed blocks. A committed list may reference
///    both newly staged blocks and blocks from the blob's current committed
///    list (used to append statements within a transaction). Staged blocks
///    not referenced by the commit are discarded — this is what lets the
///    Polaris DCP freely restart failed tasks: blocks written by abandoned
///    attempts are simply never committed.
///
/// All implementations must be thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Creates a write-once blob. Fails with AlreadyExists if present.
  virtual common::Status Put(const std::string& path,
                             std::string data) = 0;

  /// Reads the committed contents of a blob.
  virtual common::Result<std::string> Get(const std::string& path) = 0;

  /// Returns metadata for a blob; NotFound if it does not exist (a block
  /// blob exists once it has a committed block list, even an empty one).
  virtual common::Result<BlobInfo> Stat(const std::string& path) = 0;

  /// Deletes a blob (and any staged blocks). NotFound if absent.
  virtual common::Status Delete(const std::string& path) = 0;

  /// Lists blobs whose path starts with `prefix`, in lexicographic order.
  virtual common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) = 0;

  // --- Block Blob protocol -------------------------------------------------

  /// Uploads an uncommitted block for `path`. The block is invisible until
  /// a subsequent CommitBlockList names it. Re-staging an existing
  /// uncommitted block ID overwrites it (Azure semantics). Fails with
  /// FailedPrecondition if `path` exists as a write-once blob.
  virtual common::Status StageBlock(const std::string& path,
                                    const std::string& block_id,
                                    std::string data) = 0;

  /// Atomically sets the blob's contents to the concatenation of `block_ids`.
  /// Every ID must name either a staged block or a block in the current
  /// committed list (InvalidArgument otherwise, and the blob is unchanged).
  /// All staged blocks are discarded afterwards, committed or not.
  virtual common::Status CommitBlockList(
      const std::string& path, const std::vector<std::string>& block_ids) = 0;

  /// Conditional CommitBlockList — the ETag-guarded write (Azure
  /// `If-Match`). Succeeds only if the blob's current generation equals
  /// `expected_generation`; pass 0 to require that the blob does not yet
  /// exist. On mismatch fails with FailedPrecondition and the blob is
  /// unchanged. This is the optimistic-concurrency primitive the catalog
  /// journal uses to guarantee a single writer per segment.
  virtual common::Status CommitBlockListIf(
      const std::string& path, const std::vector<std::string>& block_ids,
      uint64_t expected_generation) = 0;

  /// IDs in the current committed block list, in order. NotFound if the
  /// blob has never been committed.
  virtual common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) = 0;
};

/// Byte- and operation-level counters, exposed by MemoryObjectStore for
/// benchmark reporting.
struct StoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t lists = 0;
  uint64_t blocks_staged = 0;
  uint64_t block_commits = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_OBJECT_STORE_H_
