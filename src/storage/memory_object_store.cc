#include "storage/memory_object_store.h"

#include <algorithm>

namespace polaris::storage {

using common::Result;
using common::Status;

uint64_t MemoryObjectStore::Blob::CommittedSize() const {
  uint64_t total = 0;
  for (const auto& id : committed_ids) {
    auto it = committed_blocks.find(id);
    if (it != committed_blocks.end()) total += it->second.size();
  }
  return total;
}

std::string MemoryObjectStore::Blob::Concatenate() const {
  std::string out;
  out.reserve(CommittedSize());
  for (const auto& id : committed_ids) {
    auto it = committed_blocks.find(id);
    if (it != committed_blocks.end()) out += it->second;
  }
  return out;
}

MemoryObjectStore::MemoryObjectStore(common::Clock* clock) : clock_(clock) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<common::SimClock>(1);
    clock_ = owned_clock_.get();
  }
}

Status MemoryObjectStore::Put(const std::string& path, std::string data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(path);
  if (it != blobs_.end() && (it->second.committed || it->second.is_block_blob)) {
    return Status::AlreadyExists("blob exists: " + path);
  }
  Blob& blob = blobs_[path];
  blob.is_block_blob = false;
  blob.committed = true;
  blob.created_at = clock_->Now();
  blob.generation = 1;
  stats_.puts++;
  stats_.bytes_written += data.size();
  blob.committed_ids = {""};
  blob.committed_blocks[""] = std::move(data);
  return Status::OK();
}

Result<std::string> MemoryObjectStore::Get(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(path);
  if (it == blobs_.end() || !it->second.committed) {
    return Status::NotFound("blob not found: " + path);
  }
  stats_.gets++;
  std::string data = it->second.Concatenate();
  stats_.bytes_read += data.size();
  return data;
}

Result<BlobInfo> MemoryObjectStore::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(path);
  if (it == blobs_.end() || !it->second.committed) {
    return Status::NotFound("blob not found: " + path);
  }
  BlobInfo info;
  info.path = path;
  info.size = it->second.CommittedSize();
  info.created_at = it->second.created_at;
  info.generation = it->second.generation;
  return info;
}

Status MemoryObjectStore::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(path);
  if (it == blobs_.end()) {
    return Status::NotFound("blob not found: " + path);
  }
  blobs_.erase(it);
  stats_.deletes++;
  return Status::OK();
}

Result<std::vector<BlobInfo>> MemoryObjectStore::List(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.lists++;
  std::vector<BlobInfo> out;
  for (auto it = blobs_.lower_bound(prefix); it != blobs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (!it->second.committed) continue;
    BlobInfo info;
    info.path = it->first;
    info.size = it->second.CommittedSize();
    info.created_at = it->second.created_at;
    info.generation = it->second.generation;
    out.push_back(std::move(info));
  }
  return out;
}

Status MemoryObjectStore::StageBlock(const std::string& path,
                                     const std::string& block_id,
                                     std::string data) {
  if (block_id.empty()) {
    return Status::InvalidArgument("block id must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(path);
  if (it != blobs_.end() && !it->second.is_block_blob && it->second.committed) {
    return Status::FailedPrecondition("blob is not a block blob: " + path);
  }
  Blob& blob = blobs_[path];
  blob.is_block_blob = true;
  if (blob.created_at == 0) blob.created_at = clock_->Now();
  stats_.blocks_staged++;
  stats_.bytes_written += data.size();
  blob.staged_blocks[block_id] = std::move(data);
  return Status::OK();
}

Status MemoryObjectStore::CommitBlockList(
    const std::string& path, const std::vector<std::string>& block_ids) {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitBlockListLocked(path, block_ids, std::nullopt);
}

Status MemoryObjectStore::CommitBlockListIf(
    const std::string& path, const std::vector<std::string>& block_ids,
    uint64_t expected_generation) {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitBlockListLocked(path, block_ids, expected_generation);
}

Status MemoryObjectStore::CommitBlockListLocked(
    const std::string& path, const std::vector<std::string>& block_ids,
    std::optional<uint64_t> expected_generation) {
  auto it = blobs_.find(path);
  uint64_t current_generation =
      (it != blobs_.end() && it->second.committed) ? it->second.generation : 0;
  if (expected_generation.has_value() &&
      *expected_generation != current_generation) {
    return Status::FailedPrecondition(
        "generation mismatch for " + path + ": expected " +
        std::to_string(*expected_generation) + ", found " +
        std::to_string(current_generation));
  }
  if (it == blobs_.end()) {
    // Committing an empty list on a fresh path creates an empty block blob
    // (matches Azure). Any non-empty list must name staged blocks.
    if (!block_ids.empty()) {
      return Status::InvalidArgument("no staged blocks for: " + path);
    }
    Blob& blob = blobs_[path];
    blob.is_block_blob = true;
    blob.committed = true;
    blob.created_at = clock_->Now();
    blob.generation = 1;
    stats_.block_commits++;
    return Status::OK();
  }
  Blob& blob = it->second;
  if (!blob.is_block_blob) {
    return Status::FailedPrecondition("blob is not a block blob: " + path);
  }
  // Validate: every id must be staged or already committed.
  for (const auto& id : block_ids) {
    if (blob.staged_blocks.count(id) == 0 &&
        blob.committed_blocks.count(id) == 0) {
      return Status::InvalidArgument("unknown block id '" + id +
                                     "' for blob: " + path);
    }
  }
  // Build the new committed block map. Staged blocks win over previously
  // committed blocks with the same ID (Azure: latest staged version).
  std::map<std::string, std::string> new_blocks;
  for (const auto& id : block_ids) {
    auto staged = blob.staged_blocks.find(id);
    if (staged != blob.staged_blocks.end()) {
      new_blocks[id] = staged->second;
    } else {
      new_blocks[id] = blob.committed_blocks[id];
    }
  }
  blob.committed_ids = block_ids;
  blob.committed_blocks = std::move(new_blocks);
  blob.staged_blocks.clear();
  blob.committed = true;
  blob.generation = current_generation + 1;
  if (blob.created_at == 0) blob.created_at = clock_->Now();
  stats_.block_commits++;
  return Status::OK();
}

Result<std::vector<std::string>> MemoryObjectStore::GetCommittedBlockList(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.find(path);
  if (it == blobs_.end() || !it->second.committed) {
    return Status::NotFound("blob not found: " + path);
  }
  if (!it->second.is_block_blob) {
    return Status::FailedPrecondition("blob is not a block blob: " + path);
  }
  return it->second.committed_ids;
}

StoreStats MemoryObjectStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MemoryObjectStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = StoreStats{};
}

size_t MemoryObjectStore::BlobCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [path, blob] : blobs_) {
    (void)path;
    if (blob.committed) ++n;
  }
  return n;
}

}  // namespace polaris::storage
