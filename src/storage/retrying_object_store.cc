#include "storage/retrying_object_store.h"

#include <algorithm>
#include <cmath>

#include "common/resource_usage.h"
#include "common/trace_context.h"
#include "obs/tracer.h"

namespace polaris::storage {

using common::Result;
using common::Status;

namespace {

/// Wall clock used for elapsed/backoff accounting when no clock was
/// injected, so metrics never silently record 0. Advance() is a no-op on
/// it, matching the historical "no clock, no wait" pacing behavior.
common::Clock* FallbackClock() {
  static common::SystemClock clock;
  return &clock;
}

/// Op class for per-statement accounting: mutating operations are writes,
/// everything else reads.
bool IsWriteOp(const char* op) {
  const std::string_view name(op);
  return name == "put" || name == "delete" || name == "stage_block" ||
         name == "commit_block_list" || name == "commit_block_list_if";
}

}  // namespace

bool RetryingObjectStore::IsRetryable(const Status& status) {
  if (status.IsUnavailable()) return true;
  // Timeout-shaped IO errors model a request whose outcome is unknown;
  // every ObjectStore operation is idempotent-or-checked (write-once Put,
  // re-stageable blocks, atomic commit), so repeating is safe.
  if (status.IsIOError()) {
    const std::string& msg = status.message();
    return msg.find("timeout") != std::string::npos ||
           msg.find("timed out") != std::string::npos;
  }
  return false;
}

common::Micros RetryingObjectStore::BackoffFor(uint32_t retry) {
  double delay = static_cast<double>(policy_.initial_backoff_micros) *
                 std::pow(policy_.backoff_multiplier,
                          static_cast<double>(retry - 1));
  delay = std::min(delay, static_cast<double>(policy_.max_backoff_micros));
  double jitter;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    jitter = rng_.NextDouble();
  }
  delay *= 1.0 - policy_.jitter_fraction * jitter;
  return std::max<common::Micros>(1, static_cast<common::Micros>(delay));
}

Status RetryingObjectStore::Execute(
    const char* op, const std::string& path,
    const std::function<Status()>& attempt) {
  const std::string prefix = std::string("store.") + op;
  if (metrics_ != nullptr) {
    metrics_->Add(prefix + ".ops");
    metrics_->Add("store.ops.total");
  }
  // Backoff waits and elapsed time are always accounted: against the
  // injected clock when present, against a wall clock otherwise.
  common::Clock* clock = clock_ != nullptr ? clock_ : FallbackClock();
  common::Micros start = clock->Now();
  // Ambient-tracer child span: every blob operation that runs under a
  // traced statement/job shows up as a leaf with its retries absorbed.
  obs::Span span(prefix.c_str());
  if (span.active()) span.AddAttr("path", path);
  // The caller's remaining budget rides on the thread's trace context.
  const common::Deadline& deadline = common::CurrentDeadline();

  uint32_t max_attempts = std::max<uint32_t>(1, policy_.max_attempts);
  uint32_t attempts = 0;
  // Wait accounting is fully inert (no extra clock reads) when no
  // registry is attached or it is disabled — the waits-off A/B arm.
  const bool time_waits = wait_stats_ != nullptr && wait_stats_->enabled();
  // Expired-before-start: don't issue a request whose answer is unusable.
  Status st = deadline.bounded() ? deadline.Check(prefix) : Status::OK();
  if (st.ok()) {
    for (uint32_t i = 1; i <= max_attempts; ++i) {
      attempts = i;
      const common::Micros attempt_start = time_waits ? clock->Now() : 0;
      st = attempt();
      if (time_waits) {
        common::WaitStats::Charge(wait_stats_, common::WaitClass::kStoreIo,
                                  clock->Now() - attempt_start);
      }
      if (st.ok() || !IsRetryable(st)) break;
      if (i == max_attempts) {
        exhausted_.fetch_add(1);
        if (metrics_ != nullptr) {
          metrics_->Add(prefix + ".exhausted");
          metrics_->Add("store.exhausted.total");
        }
        if (events_ != nullptr) {
          events_->Emit(obs::EventLevel::kError, "storage",
                        "store.retry_exhausted",
                        {{"op", op},
                         {"path", path},
                         {"attempts", std::to_string(attempts)}},
                        st.ToString());
        }
        break;
      }
      common::Micros backoff = BackoffFor(i);
      if (deadline.bounded()) {
        Status budget = deadline.Check(prefix);
        if (!budget.ok()) {
          // The attempt itself burned the budget (or a KILL landed):
          // stop retrying and surface the terminal status instead of the
          // transient one. Neither code is ever retried upstream.
          st = budget;
          break;
        }
        common::Micros remaining = deadline.remaining_micros();
        if (deadline.has_deadline() && backoff >= remaining) {
          // Waiting the full backoff guarantees expiry; cap the wait at
          // the remaining budget and report DeadlineExceeded, so the
          // statement fails within deadline + one backoff quantum at
          // worst.
          const common::Micros cap_start = time_waits ? clock->Now() : 0;
          clock->Advance(remaining);
          if (time_waits) {
            // Measured on the clock rather than assumed: the fallback
            // wall clock's Advance is a no-op, and a charge for time
            // that never passed would break the partition invariant.
            common::WaitStats::Charge(wait_stats_,
                                      common::WaitClass::kRetryBackoff,
                                      clock->Now() - cap_start);
          }
          if (metrics_ != nullptr) {
            metrics_->Add("store.backoff_micros.total",
                          static_cast<uint64_t>(remaining));
          }
          st = Status::DeadlineExceeded(
              prefix + " " + path + ": retry budget exhausted by deadline");
          break;
        }
      }
      total_retries_.fetch_add(1);
      if (metrics_ != nullptr) {
        metrics_->Add(prefix + ".retries");
        metrics_->Add("store.retries.total");
      }
      const common::Micros backoff_start = time_waits ? clock->Now() : 0;
      clock->Advance(backoff);
      if (time_waits) {
        common::WaitStats::Charge(wait_stats_,
                                  common::WaitClass::kRetryBackoff,
                                  clock->Now() - backoff_start);
      }
      if (metrics_ != nullptr) {
        metrics_->Add("store.backoff_micros.total",
                      static_cast<uint64_t>(backoff));
      }
    }
  }
  if (span.active()) {
    span.AddAttr("attempts", attempts);
    span.AddAttr("retries", attempts > 0 ? attempts - 1 : 0);
    if (!st.ok()) span.AddAttr("error", st.ToString());
  }

  // Per-statement accounting rides the ambient trace context, so charges
  // from DCP workers land on the owning statement's vector.
  if (auto* usage = common::CurrentResourceUsage()) {
    usage->ChargeStoreOp(IsWriteOp(op));
    usage->ChargeStoreRetries(attempts > 0 ? attempts - 1 : 0);
  }

  if (metrics_ != nullptr) {
    metrics_->Observe(prefix + ".latency_us", clock->Now() - start);
    metrics_->Observe(prefix + ".attempts", attempts);
    if (!st.ok()) {
      metrics_->Add(prefix + ".errors");
      if (st.IsDeadlineExceeded()) {
        metrics_->Add("store.deadline_exceeded.total");
      } else if (st.IsCancelled()) {
        metrics_->Add("store.cancelled.total");
      }
    }
  }
  return st;
}

Status RetryingObjectStore::Put(const std::string& path, std::string data) {
  // The payload is needed again on retry, so it cannot be moved into the
  // base call.
  const uint64_t bytes = data.size();
  Status st = Execute("put", path, [&]() { return base_->Put(path, data); });
  if (st.ok()) {
    if (metrics_ != nullptr) metrics_->Add("store.put.bytes", bytes);
    if (auto* usage = common::CurrentResourceUsage()) {
      usage->ChargeStoreBytes(/*is_write=*/true, bytes);
    }
  }
  return st;
}

Result<std::string> RetryingObjectStore::Get(const std::string& path) {
  Result<std::string> out = Status::Internal("no attempt made");
  Status st = Execute("get", path, [&]() {
    out = base_->Get(path);
    return out.status();
  });
  if (!st.ok()) return st;
  if (metrics_ != nullptr) metrics_->Add("store.get.bytes", out->size());
  if (auto* usage = common::CurrentResourceUsage()) {
    usage->ChargeStoreBytes(/*is_write=*/false, out->size());
  }
  return out;
}

Result<BlobInfo> RetryingObjectStore::Stat(const std::string& path) {
  Result<BlobInfo> out = Status::Internal("no attempt made");
  Status st = Execute("stat", path, [&]() {
    out = base_->Stat(path);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

Status RetryingObjectStore::Delete(const std::string& path) {
  return Execute("delete", path, [&]() { return base_->Delete(path); });
}

Result<std::vector<BlobInfo>> RetryingObjectStore::List(
    const std::string& prefix) {
  Result<std::vector<BlobInfo>> out = Status::Internal("no attempt made");
  Status st = Execute("list", prefix, [&]() {
    out = base_->List(prefix);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

Status RetryingObjectStore::StageBlock(const std::string& path,
                                       const std::string& block_id,
                                       std::string data) {
  // Re-staging the same block ID overwrites (Azure semantics), so a retry
  // after an ambiguous failure converges to the same staged bytes.
  const uint64_t bytes = data.size();
  Status st = Execute("stage_block", path,
                      [&]() { return base_->StageBlock(path, block_id, data); });
  if (st.ok()) {
    if (metrics_ != nullptr) metrics_->Add("store.stage_block.bytes", bytes);
    if (auto* usage = common::CurrentResourceUsage()) {
      usage->ChargeStoreBytes(/*is_write=*/true, bytes);
    }
  }
  return st;
}

Status RetryingObjectStore::CommitBlockList(
    const std::string& path, const std::vector<std::string>& block_ids) {
  return Execute("commit_block_list", path,
                 [&]() { return base_->CommitBlockList(path, block_ids); });
}

Status RetryingObjectStore::CommitBlockListIf(
    const std::string& path, const std::vector<std::string>& block_ids,
    uint64_t expected_generation) {
  // A generation mismatch surfaces as FailedPrecondition, which is not
  // retryable — exactly what an ETag-guarded commit protocol needs.
  return Execute("commit_block_list_if", path, [&]() {
    return base_->CommitBlockListIf(path, block_ids, expected_generation);
  });
}

Result<std::vector<std::string>> RetryingObjectStore::GetCommittedBlockList(
    const std::string& path) {
  Result<std::vector<std::string>> out = Status::Internal("no attempt made");
  Status st = Execute("get_block_list", path, [&]() {
    out = base_->GetCommittedBlockList(path);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

}  // namespace polaris::storage
