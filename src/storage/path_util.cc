#include "storage/path_util.h"

#include <cinttypes>
#include <cstdio>

namespace polaris::storage {

namespace {
std::string FormatSeq(uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%020" PRIu64, seq);
  return buf;
}
}  // namespace

std::string PathUtil::TableRoot(int64_t table_id) {
  return "tables/" + std::to_string(table_id);
}

std::string PathUtil::DataDir(int64_t table_id) {
  return TableRoot(table_id) + "/data";
}

std::string PathUtil::ManifestDir(int64_t table_id) {
  return TableRoot(table_id) + "/manifests";
}

std::string PathUtil::CheckpointDir(int64_t table_id) {
  return TableRoot(table_id) + "/checkpoints";
}

std::string PathUtil::DataFilePath(int64_t table_id, const std::string& guid) {
  return DataDir(table_id) + "/" + guid + ".parquet";
}

std::string PathUtil::DeleteVectorPath(int64_t table_id,
                                       const std::string& guid) {
  return DataDir(table_id) + "/" + guid + ".dv";
}

std::string PathUtil::ManifestPath(int64_t table_id, const std::string& guid) {
  return ManifestDir(table_id) + "/" + guid + ".manifest";
}

std::string PathUtil::CheckpointPath(int64_t table_id, uint64_t sequence_id) {
  return CheckpointDir(table_id) + "/" + FormatSeq(sequence_id) +
         ".checkpoint";
}

std::string PathUtil::PublishedDeltaLogDir(const std::string& table_name) {
  return "published/" + table_name + "/_delta_log";
}

std::string PathUtil::PublishedDeltaLogPath(const std::string& table_name,
                                            uint64_t version) {
  return PublishedDeltaLogDir(table_name) + "/" + FormatSeq(version) + ".json";
}

std::string PathUtil::Join(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.back() == '/') return a + (b.front() == '/' ? b.substr(1) : b);
  return a + (b.front() == '/' ? b : "/" + b);
}

}  // namespace polaris::storage
