#include "storage/local_file_object_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/bytes.h"
#include "common/crashpoint.h"
#include "common/guid.h"
#include "common/logging.h"

namespace polaris::storage {

namespace fs = std::filesystem;

using common::Result;
using common::Status;

namespace {

constexpr uint32_t kBlobMagic = 0x31424c50;  // "PLB1"

bool IsPlainChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

char HexDigit(int v) { return v < 10 ? static_cast<char>('0' + v)
                                     : static_cast<char>('a' + v - 10); }

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Maps one blob-path segment to a filesystem-safe name. Characters
/// outside [A-Za-z0-9._-] are %XX-escaped; "." / ".." / "" (which are
/// special to the filesystem) are escaped entirely. A lone "%" encodes
/// the empty segment — '%' is otherwise always followed by two hex
/// digits, so the mapping is bijective.
std::string EncodeSegment(const std::string& segment) {
  if (segment.empty()) return "%";
  bool force = segment == "." || segment == "..";
  std::string out;
  out.reserve(segment.size());
  for (char c : segment) {
    if (!force && IsPlainChar(c)) {
      out += c;
    } else {
      out += '%';
      out += HexDigit((static_cast<unsigned char>(c) >> 4) & 0xf);
      out += HexDigit(static_cast<unsigned char>(c) & 0xf);
    }
  }
  return out;
}

bool DecodeSegment(const std::string& encoded, std::string* out) {
  if (encoded == "%") {
    out->clear();
    return true;
  }
  out->clear();
  out->reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      *out += encoded[i];
      continue;
    }
    if (i + 2 >= encoded.size()) return false;
    int hi = HexValue(encoded[i + 1]);
    int lo = HexValue(encoded[i + 2]);
    if (hi < 0 || lo < 0) return false;
    *out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return true;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (true) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      segments.push_back(path.substr(start));
      break;
    }
    segments.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return segments;
}

Result<std::string> ReadFile(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) return Status::NotFound("blob file not found: " + file);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + file);
  return content;
}

/// Writes `content` durably: all bytes + fsync before returning OK.
Status WriteFileSynced(const std::string& file, const std::string& content) {
  int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open failed: " + file + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written,
                        content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::IOError("write failed: " + file + ": " +
                                  std::strerror(errno));
      ::close(fd);
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::IOError("fsync failed: " + file + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::close(fd) != 0) {
    return Status::IOError("close failed: " + file + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// fsync on a directory persists the rename that just happened inside
/// it. Best effort: some filesystems refuse directory fds.
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

Status ReadOnlyViolation(const std::string& op, const std::string& path) {
  return Status::FailedPrecondition("read-only object store: " + op +
                                    " rejected for " + path);
}

}  // namespace

uint64_t LocalFileObjectStore::Header::payload_size() const {
  uint64_t total = 0;
  for (const auto& [id, size] : blocks) {
    (void)id;
    total += size;
  }
  return total;
}

LocalFileObjectStore::LocalFileObjectStore(std::string root,
                                           common::Clock* clock,
                                           bool read_only)
    : root_(std::move(root)), read_only_(read_only), clock_(clock) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<common::SimClock>(1);
    clock_ = owned_clock_.get();
  }
  init_status_ = SweepAndScan();
}

Status LocalFileObjectStore::ExitReadOnly() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!read_only_.load(std::memory_order_acquire)) return Status::OK();
  std::error_code ec;
  for (const char* sub : {"objects", "staged", "tmp"}) {
    fs::create_directories(fs::path(root_) / sub, ec);
    if (ec) {
      return Status::IOError("cannot create " + root_ + "/" + sub + ": " +
                             ec.message());
    }
  }
  // No sweep: the fenced ex-primary's staged blocks are invisible dead
  // state; the next full reopen discards them.
  read_only_.store(false, std::memory_order_release);
  return Status::OK();
}

Status LocalFileObjectStore::SweepAndScan() {
  std::error_code ec;
  if (read_only_) {
    // A replica attaching to a live primary's directory: the staged and
    // tmp entries are the PRIMARY's in-flight transactions, not crash
    // leftovers — touching them would destroy uncommitted writes the
    // primary is about to commit. Don't create anything either; only
    // verify the layout exists.
    if (!fs::is_directory(fs::path(root_) / "objects", ec)) {
      return Status::NotFound("no object store at " + root_ +
                              " (missing objects/ directory)");
    }
  } else {
    for (const char* sub : {"objects", "staged", "tmp"}) {
      fs::create_directories(fs::path(root_) / sub, ec);
      if (ec) {
        return Status::IOError("cannot create " + root_ + "/" + sub + ": " +
                               ec.message());
      }
    }
    // Discard uncommitted state a crashed process left behind: staged
    // blocks never named by a CommitBlockList are invisible by contract.
    for (const auto& entry :
         fs::recursive_directory_iterator(fs::path(root_) / "staged", ec)) {
      if (entry.is_regular_file(ec)) ++swept_staged_blocks_;
    }
    fs::remove_all(fs::path(root_) / "staged", ec);
    fs::remove_all(fs::path(root_) / "tmp", ec);
    fs::create_directories(fs::path(root_) / "staged", ec);
    fs::create_directories(fs::path(root_) / "tmp", ec);
    if (ec) return Status::IOError("sweep failed: " + ec.message());
  }

  // Scan committed blobs so a reopening engine can advance its clock
  // past every persisted created_at stamp.
  common::Micros max_seen = 0;
  for (const auto& entry :
       fs::recursive_directory_iterator(fs::path(root_) / "objects", ec)) {
    if (!entry.is_regular_file(ec)) continue;
    auto content = ReadFile(entry.path().string());
    if (!content.ok()) return content.status();
    Header header;
    POLARIS_RETURN_IF_ERROR(
        ParseHeader(*content, entry.path().string(), &header));
    max_seen = std::max(max_seen, header.created_at);
  }
  if (ec) return Status::IOError("scan failed: " + ec.message());
  max_created_at_.store(max_seen);
  return Status::OK();
}

std::string LocalFileObjectStore::ObjectFile(const std::string& path) const {
  fs::path file = fs::path(root_) / "objects";
  std::vector<std::string> segments = SplitPath(path);
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    file /= EncodeSegment(segments[i]);
  }
  file /= EncodeSegment(segments.back()) + ".blob";
  return file.string();
}

std::string LocalFileObjectStore::StagedDir(const std::string& path) const {
  fs::path dir = fs::path(root_) / "staged";
  std::vector<std::string> segments = SplitPath(path);
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    dir /= EncodeSegment(segments[i]);
  }
  dir /= EncodeSegment(segments.back()) + ".blocks";
  return dir.string();
}

Status LocalFileObjectStore::ParseHeader(const std::string& content,
                                         const std::string& path,
                                         Header* header) {
  common::ByteReader in(content);
  uint32_t magic;
  POLARIS_RETURN_IF_ERROR(in.GetU32(&magic));
  if (magic != kBlobMagic) {
    return Status::Corruption("bad blob magic in " + path);
  }
  uint8_t is_block_blob;
  POLARIS_RETURN_IF_ERROR(in.GetU8(&is_block_blob));
  int64_t created_at;
  POLARIS_RETURN_IF_ERROR(in.GetI64(&created_at));
  POLARIS_RETURN_IF_ERROR(in.GetU64(&header->generation));
  uint64_t num_blocks;
  POLARIS_RETURN_IF_ERROR(in.GetVarint(&num_blocks));
  header->is_block_blob = is_block_blob != 0;
  header->created_at = created_at;
  header->blocks.clear();
  header->blocks.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    std::string id;
    uint64_t size;
    POLARIS_RETURN_IF_ERROR(in.GetString(&id));
    POLARIS_RETURN_IF_ERROR(in.GetVarint(&size));
    header->blocks.emplace_back(std::move(id), size);
  }
  header->payload_offset = in.position();
  if (content.size() - header->payload_offset != header->payload_size()) {
    return Status::Corruption("blob payload size mismatch in " + path);
  }
  return Status::OK();
}

Status LocalFileObjectStore::WriteBlobFileLocked(
    const std::string& file, const Header& header,
    const std::vector<std::string>& block_payloads,
    const char* crash_point) {
  common::ByteWriter out;
  out.PutU32(kBlobMagic);
  out.PutU8(header.is_block_blob ? 1 : 0);
  out.PutI64(header.created_at);
  out.PutU64(header.generation);
  out.PutVarint(header.blocks.size());
  for (const auto& [id, size] : header.blocks) {
    out.PutString(id);
    out.PutVarint(size);
  }
  std::string content = out.Release();
  for (const auto& payload : block_payloads) content += payload;

  std::error_code ec;
  fs::path target(file);
  fs::create_directories(target.parent_path(), ec);
  if (ec) {
    return Status::IOError("cannot create " + target.parent_path().string() +
                           ": " + ec.message());
  }
  std::string tmp =
      (fs::path(root_) / "tmp" / common::Guid::Generate().ToString())
          .string();
  POLARIS_RETURN_IF_ERROR(WriteFileSynced(tmp, content));
  // The temp file is durable but the rename has not happened: a crash
  // here must leave the blob's previous committed state intact.
  POLARIS_CRASH_POINT(crash_point);
  fs::rename(tmp, target, ec);
  if (ec) {
    return Status::IOError("rename failed: " + tmp + " -> " + file + ": " +
                           ec.message());
  }
  SyncDirectory(target.parent_path().string());
  common::Micros prev = max_created_at_.load();
  while (header.created_at > prev &&
         !max_created_at_.compare_exchange_weak(prev, header.created_at)) {
  }
  return Status::OK();
}

Status LocalFileObjectStore::Put(const std::string& path, std::string data) {
  if (read_only_) return ReadOnlyViolation("Put", path);
  std::lock_guard<std::mutex> lock(mu_);
  std::string file = ObjectFile(path);
  std::error_code ec;
  if (fs::exists(file, ec) || fs::exists(StagedDir(path), ec)) {
    return Status::AlreadyExists("blob exists: " + path);
  }
  Header header;
  header.is_block_blob = false;
  header.created_at = clock_->Now();
  header.generation = 1;
  header.blocks.emplace_back("", data.size());
  std::vector<std::string> payloads;
  payloads.push_back(std::move(data));
  return WriteBlobFileLocked(file, header, payloads,
                             common::crash::kStorePutBeforeRename);
}

Result<std::string> LocalFileObjectStore::Get(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto content = ReadFile(ObjectFile(path));
  if (!content.ok()) return Status::NotFound("blob not found: " + path);
  Header header;
  POLARIS_RETURN_IF_ERROR(ParseHeader(*content, path, &header));
  return content->substr(header.payload_offset);
}

Result<BlobInfo> LocalFileObjectStore::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto content = ReadFile(ObjectFile(path));
  if (!content.ok()) return Status::NotFound("blob not found: " + path);
  Header header;
  POLARIS_RETURN_IF_ERROR(ParseHeader(*content, path, &header));
  BlobInfo info;
  info.path = path;
  info.size = header.payload_size();
  info.created_at = header.created_at;
  info.generation = header.generation;
  return info;
}

Status LocalFileObjectStore::Delete(const std::string& path) {
  if (read_only_) return ReadOnlyViolation("Delete", path);
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  bool had_object = fs::remove(ObjectFile(path), ec);
  bool had_staged = fs::remove_all(StagedDir(path), ec) > 0;
  if (!had_object && !had_staged) {
    return Status::NotFound("blob not found: " + path);
  }
  return Status::OK();
}

Result<std::vector<BlobInfo>> LocalFileObjectStore::List(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlobInfo> out;
  fs::path objects = fs::path(root_) / "objects";
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(objects, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    // Reconstruct the blob path from the encoded relative file path.
    fs::path rel = fs::relative(entry.path(), objects, ec);
    if (ec) continue;
    std::string blob_path;
    bool valid = true;
    for (auto it = rel.begin(); it != rel.end(); ++it) {
      std::string encoded = it->string();
      if (std::next(it) == rel.end()) {
        const std::string suffix = ".blob";
        if (encoded.size() < suffix.size() ||
            encoded.compare(encoded.size() - suffix.size(), suffix.size(),
                            suffix) != 0) {
          valid = false;
          break;
        }
        encoded.resize(encoded.size() - suffix.size());
      }
      std::string segment;
      if (!DecodeSegment(encoded, &segment)) {
        valid = false;
        break;
      }
      if (!blob_path.empty() || it != rel.begin()) blob_path += '/';
      blob_path += segment;
    }
    if (!valid) continue;
    if (blob_path.compare(0, prefix.size(), prefix) != 0) continue;
    auto content = ReadFile(entry.path().string());
    if (!content.ok()) return content.status();
    Header header;
    POLARIS_RETURN_IF_ERROR(ParseHeader(*content, blob_path, &header));
    BlobInfo info;
    info.path = blob_path;
    info.size = header.payload_size();
    info.created_at = header.created_at;
    info.generation = header.generation;
    out.push_back(std::move(info));
  }
  if (ec) return Status::IOError("list failed: " + ec.message());
  std::sort(out.begin(), out.end(),
            [](const BlobInfo& a, const BlobInfo& b) { return a.path < b.path; });
  return out;
}

Status LocalFileObjectStore::StageBlock(const std::string& path,
                                        const std::string& block_id,
                                        std::string data) {
  if (block_id.empty()) {
    return Status::InvalidArgument("block id must be non-empty");
  }
  if (read_only_) return ReadOnlyViolation("StageBlock", path);
  std::lock_guard<std::mutex> lock(mu_);
  std::string file = ObjectFile(path);
  std::error_code ec;
  if (fs::exists(file, ec)) {
    auto content = ReadFile(file);
    if (!content.ok()) return content.status();
    Header header;
    POLARIS_RETURN_IF_ERROR(ParseHeader(*content, path, &header));
    if (!header.is_block_blob) {
      return Status::FailedPrecondition("blob is not a block blob: " + path);
    }
  }
  fs::path dir(StagedDir(path));
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + dir.string() + ": " +
                           ec.message());
  }
  // Staged blocks are scratch state — discarded wholesale on reopen — so
  // a plain overwrite-in-place write is enough (re-stage = overwrite).
  std::ofstream block(dir / EncodeSegment(block_id),
                      std::ios::binary | std::ios::trunc);
  block.write(data.data(), static_cast<std::streamsize>(data.size()));
  block.close();
  if (!block) {
    return Status::IOError("stage write failed for block '" + block_id +
                           "' of " + path);
  }
  return Status::OK();
}

Status LocalFileObjectStore::CommitBlockList(
    const std::string& path, const std::vector<std::string>& block_ids) {
  if (read_only_) return ReadOnlyViolation("CommitBlockList", path);
  std::lock_guard<std::mutex> lock(mu_);
  return CommitBlockListLocked(path, block_ids, std::nullopt);
}

Status LocalFileObjectStore::CommitBlockListIf(
    const std::string& path, const std::vector<std::string>& block_ids,
    uint64_t expected_generation) {
  if (read_only_) return ReadOnlyViolation("CommitBlockListIf", path);
  std::lock_guard<std::mutex> lock(mu_);
  return CommitBlockListLocked(path, block_ids, expected_generation);
}

Status LocalFileObjectStore::CommitBlockListLocked(
    const std::string& path, const std::vector<std::string>& block_ids,
    std::optional<uint64_t> expected_generation) {
  std::string file = ObjectFile(path);
  std::error_code ec;
  bool exists = fs::exists(file, ec);
  Header old_header;
  std::string old_content;
  if (exists) {
    auto content = ReadFile(file);
    if (!content.ok()) return content.status();
    old_content = std::move(*content);
    POLARIS_RETURN_IF_ERROR(ParseHeader(old_content, path, &old_header));
    if (!old_header.is_block_blob) {
      return Status::FailedPrecondition("blob is not a block blob: " + path);
    }
  }
  uint64_t current_generation = exists ? old_header.generation : 0;
  if (expected_generation.has_value() &&
      *expected_generation != current_generation) {
    return Status::FailedPrecondition(
        "generation mismatch for " + path + ": expected " +
        std::to_string(*expected_generation) + ", found " +
        std::to_string(current_generation));
  }

  // Offsets of the currently committed blocks, for re-committed IDs.
  std::map<std::string, std::pair<uint64_t, uint64_t>> committed;  // id -> (off, size)
  uint64_t offset = old_header.payload_offset;
  for (const auto& [id, size] : old_header.blocks) {
    committed.emplace(id, std::make_pair(offset, size));
    offset += size;
  }
  std::string staged_dir = StagedDir(path);

  Header header;
  header.is_block_blob = true;
  header.created_at = exists ? old_header.created_at : clock_->Now();
  header.generation = current_generation + 1;
  std::vector<std::string> payloads;
  payloads.reserve(block_ids.size());
  for (const auto& id : block_ids) {
    // Staged wins over a previously committed block with the same ID
    // (Azure: latest staged version).
    std::string staged_file =
        (fs::path(staged_dir) / EncodeSegment(id)).string();
    if (fs::exists(staged_file, ec)) {
      auto data = ReadFile(staged_file);
      if (!data.ok()) return data.status();
      header.blocks.emplace_back(id, data->size());
      payloads.push_back(std::move(*data));
    } else if (auto it = committed.find(id); it != committed.end()) {
      header.blocks.emplace_back(id, it->second.second);
      payloads.push_back(
          old_content.substr(it->second.first, it->second.second));
    } else {
      return Status::InvalidArgument("unknown block id '" + id +
                                     "' for blob: " + path);
    }
  }

  POLARIS_RETURN_IF_ERROR(
      WriteBlobFileLocked(file, header, payloads,
                          common::crash::kStoreCommitBeforeRename));
  // All staged blocks are discarded after a commit, referenced or not.
  fs::remove_all(staged_dir, ec);
  return Status::OK();
}

Result<std::vector<std::string>> LocalFileObjectStore::GetCommittedBlockList(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto content = ReadFile(ObjectFile(path));
  if (!content.ok()) return Status::NotFound("blob not found: " + path);
  Header header;
  POLARIS_RETURN_IF_ERROR(ParseHeader(*content, path, &header));
  if (!header.is_block_blob) {
    return Status::FailedPrecondition("blob is not a block blob: " + path);
  }
  std::vector<std::string> ids;
  ids.reserve(header.blocks.size());
  for (const auto& [id, size] : header.blocks) {
    (void)size;
    ids.push_back(id);
  }
  return ids;
}

uint64_t LocalFileObjectStore::StagedBlockCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t count = 0;
  std::error_code ec;
  for (const auto& entry :
       fs::recursive_directory_iterator(fs::path(root_) / "staged", ec)) {
    if (entry.is_regular_file(ec)) ++count;
  }
  return count;
}

}  // namespace polaris::storage
