#include "storage/circuit_breaker_store.h"

#include <algorithm>

namespace polaris::storage {

using common::Result;
using common::Status;

namespace {

common::Clock* FallbackClock() {
  static common::SystemClock clock;
  return &clock;
}

}  // namespace

std::string_view CircuitBreakerStore::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreakerStore::CircuitBreakerStore(ObjectStore* base,
                                         common::Clock* clock,
                                         CircuitBreakerOptions options)
    : base_(base),
      clock_(clock != nullptr ? clock : FallbackClock()),
      options_(options) {
  options_.half_open_probes = std::max<uint32_t>(1, options_.half_open_probes);
}

common::Micros CircuitBreakerStore::Now() const { return clock_->Now(); }

bool CircuitBreakerStore::CountsAsFailure(const Status& status) {
  // Post-retry Unavailable means the retry budget was spent and storage is
  // still down; IOError is an infrastructure fault by definition. Anything
  // else is either success, a semantic outcome, or the client's own budget.
  return status.IsUnavailable() || status.IsIOError();
}

void CircuitBreakerStore::TransitionLocked(State to, std::string_view why) {
  State from = state();
  if (from == to) return;
  state_.store(static_cast<int>(to), std::memory_order_release);
  if (to == State::kOpen) {
    times_opened_.fetch_add(1);
    open_until_us_ = Now() + options_.open_duration_micros;
    probe_successes_ = 0;
  } else if (to == State::kHalfOpen) {
    probe_successes_ = 0;
  } else {  // closed
    consecutive_failures_ = 0;
    probe_successes_ = 0;
  }
  if (metrics_ != nullptr) {
    metrics_->Add("store.breaker.transitions.total");
    if (to == State::kOpen) metrics_->Add("store.breaker.opened.total");
  }
  if (events_ != nullptr) {
    events_->Emit(to == State::kOpen ? obs::EventLevel::kWarn
                                     : obs::EventLevel::kInfo,
                  "storage", "breaker.transition",
                  {{"from", std::string(StateName(from))},
                   {"to", std::string(StateName(to))},
                   {"reason", std::string(why)}});
  }
}

Status CircuitBreakerStore::Admit(const char* op, bool* is_probe) {
  *is_probe = false;
  std::lock_guard<std::mutex> lock(mu_);
  State s = state();
  if (s == State::kOpen) {
    if (Now() >= open_until_us_) {
      TransitionLocked(State::kHalfOpen, "open duration elapsed");
      s = State::kHalfOpen;
    } else {
      fast_failures_.fetch_add(1);
      if (metrics_ != nullptr) metrics_->Add("store.breaker.fast_fail.total");
      common::Micros retry_after = open_until_us_ - Now();
      return Status::Unavailable(
          std::string("circuit breaker open: ") + op +
          " rejected without storage traffic; retry after " +
          std::to_string(retry_after) + "us");
    }
  }
  if (s == State::kHalfOpen) {
    if (probe_in_flight_) {
      // Only one probe at a time; everyone else is still shed.
      fast_failures_.fetch_add(1);
      if (metrics_ != nullptr) metrics_->Add("store.breaker.fast_fail.total");
      return Status::Unavailable(std::string("circuit breaker half-open: ") +
                                 op + " rejected while probe in flight");
    }
    probe_in_flight_ = true;
    *is_probe = true;
  }
  return Status::OK();
}

void CircuitBreakerStore::OnOutcome(bool is_probe, const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (is_probe) probe_in_flight_ = false;
  // Budget/semantic outcomes carry no storage-health signal either way.
  if (!status.ok() && !CountsAsFailure(status)) return;
  switch (state()) {
    case State::kClosed:
      if (status.ok()) {
        consecutive_failures_ = 0;
      } else if (++consecutive_failures_ >= options_.failure_threshold) {
        TransitionLocked(State::kOpen,
                         std::to_string(consecutive_failures_) +
                             " consecutive storage failures");
      }
      break;
    case State::kHalfOpen:
      if (!is_probe) break;  // stragglers admitted before the trip
      if (status.ok()) {
        if (++probe_successes_ >= options_.half_open_probes) {
          TransitionLocked(State::kClosed, "probe succeeded");
        }
      } else {
        TransitionLocked(State::kOpen, "probe failed");
      }
      break;
    case State::kOpen:
      // A straggler finishing after the trip; nothing to update.
      break;
  }
}

Status CircuitBreakerStore::Execute(
    const char* op, const std::function<Status()>& attempt) {
  if (!enabled()) return attempt();
  bool is_probe = false;
  Status gate = Admit(op, &is_probe);
  if (!gate.ok()) return gate;
  Status st = attempt();
  OnOutcome(is_probe, st);
  return st;
}

Status CircuitBreakerStore::Put(const std::string& path, std::string data) {
  return Execute("Put",
                 [&]() { return base_->Put(path, std::move(data)); });
}

Result<std::string> CircuitBreakerStore::Get(const std::string& path) {
  Result<std::string> out = Status::Internal("no attempt made");
  Status st = Execute("Get", [&]() {
    out = base_->Get(path);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

Result<BlobInfo> CircuitBreakerStore::Stat(const std::string& path) {
  Result<BlobInfo> out = Status::Internal("no attempt made");
  Status st = Execute("Stat", [&]() {
    out = base_->Stat(path);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

Status CircuitBreakerStore::Delete(const std::string& path) {
  return Execute("Delete", [&]() { return base_->Delete(path); });
}

Result<std::vector<BlobInfo>> CircuitBreakerStore::List(
    const std::string& prefix) {
  Result<std::vector<BlobInfo>> out = Status::Internal("no attempt made");
  Status st = Execute("List", [&]() {
    out = base_->List(prefix);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

Status CircuitBreakerStore::StageBlock(const std::string& path,
                                       const std::string& block_id,
                                       std::string data) {
  return Execute("StageBlock", [&]() {
    return base_->StageBlock(path, block_id, std::move(data));
  });
}

Status CircuitBreakerStore::CommitBlockList(
    const std::string& path, const std::vector<std::string>& block_ids) {
  return Execute("CommitBlockList",
                 [&]() { return base_->CommitBlockList(path, block_ids); });
}

Status CircuitBreakerStore::CommitBlockListIf(
    const std::string& path, const std::vector<std::string>& block_ids,
    uint64_t expected_generation) {
  return Execute("CommitBlockListIf", [&]() {
    return base_->CommitBlockListIf(path, block_ids, expected_generation);
  });
}

Result<std::vector<std::string>> CircuitBreakerStore::GetCommittedBlockList(
    const std::string& path) {
  Result<std::vector<std::string>> out = Status::Internal("no attempt made");
  Status st = Execute("GetCommittedBlockList", [&]() {
    out = base_->GetCommittedBlockList(path);
    return out.status();
  });
  if (!st.ok()) return st;
  return out;
}

}  // namespace polaris::storage
