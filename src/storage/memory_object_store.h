#ifndef POLARIS_STORAGE_MEMORY_OBJECT_STORE_H_
#define POLARIS_STORAGE_MEMORY_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/object_store.h"

namespace polaris::storage {

/// In-process ObjectStore used as the OneLake substitute. Implements the
/// full Block Blob protocol with the semantics documented on ObjectStore.
/// Time stamps come from the injected Clock so garbage-collection tests can
/// run on virtual time.
class MemoryObjectStore : public ObjectStore {
 public:
  /// `clock` must outlive the store; if null, an internal SimClock starting
  /// at 1 is used.
  explicit MemoryObjectStore(common::Clock* clock = nullptr);

  common::Status Put(const std::string& path, std::string data) override;
  common::Result<std::string> Get(const std::string& path) override;
  common::Result<BlobInfo> Stat(const std::string& path) override;
  common::Status Delete(const std::string& path) override;
  common::Result<std::vector<BlobInfo>> List(
      const std::string& prefix) override;

  common::Status StageBlock(const std::string& path,
                            const std::string& block_id,
                            std::string data) override;
  common::Status CommitBlockList(
      const std::string& path,
      const std::vector<std::string>& block_ids) override;
  common::Status CommitBlockListIf(const std::string& path,
                                   const std::vector<std::string>& block_ids,
                                   uint64_t expected_generation) override;
  common::Result<std::vector<std::string>> GetCommittedBlockList(
      const std::string& path) override;

  /// Snapshot of the operation counters.
  StoreStats stats() const;
  void ResetStats();

  /// Number of blobs currently visible (committed block blobs + put blobs).
  size_t BlobCount() const;

  common::Clock* clock() { return clock_; }

 private:
  common::Status CommitBlockListLocked(
      const std::string& path, const std::vector<std::string>& block_ids,
      std::optional<uint64_t> expected_generation);

  struct Blob {
    // Committed state: ordered block list; for Put blobs a single implicit
    // block named "".
    std::vector<std::string> committed_ids;
    std::map<std::string, std::string> committed_blocks;
    // Staged (uncommitted) blocks.
    std::map<std::string, std::string> staged_blocks;
    bool is_block_blob = false;
    bool committed = false;  // visible?
    common::Micros created_at = 0;
    uint64_t generation = 0;  // bumped by every successful commit

    uint64_t CommittedSize() const;
    std::string Concatenate() const;
  };

  mutable std::mutex mu_;
  std::map<std::string, Blob> blobs_;
  std::unique_ptr<common::SimClock> owned_clock_;
  common::Clock* clock_;
  StoreStats stats_;
};

}  // namespace polaris::storage

#endif  // POLARIS_STORAGE_MEMORY_OBJECT_STORE_H_
