#include "storage/fault_injection_store.h"

#include "obs/tracer.h"

namespace polaris::storage {

using common::Result;
using common::Status;

bool FaultInjectionStore::ShouldFail(bool is_write, const char* op,
                                     const std::string& path) {
  bool fail = false;
  common::Micros delay = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++op_counter_;
    delay = is_write ? policy_.write_latency_micros
                     : policy_.read_latency_micros;
    if (policy_.heavy_tail_probability > 0.0 &&
        rng_.Bernoulli(policy_.heavy_tail_probability)) {
      delay = policy_.heavy_tail_latency_micros;
    }
    if (policy_.fail_nth_operation != 0 &&
        op_counter_ == policy_.fail_nth_operation) {
      policy_.fail_nth_operation = 0;  // one-shot
      fail = true;
    } else {
      double p = is_write ? policy_.write_failure_probability
                          : policy_.read_failure_probability;
      fail = p > 0.0 && rng_.Bernoulli(p);
    }
  }
  if (delay > 0 && clock_ != nullptr) {
    // Slow storage burns time even when the request ultimately fails —
    // that is what makes brownouts worse than outages for deadlines.
    clock_->Advance(delay);
    injected_latency_micros_.fetch_add(static_cast<uint64_t>(delay));
  }
  if (fail) {
    injected_failures_.fetch_add(1);
    // Chaos leaves a trace: a marker span under the retrying store's op
    // span, so an EXPLAIN ANALYZE / Perfetto timeline shows exactly which
    // attempt the injected fault ate.
    obs::Span span("store.fault_injected");
    if (span.active()) {
      span.AddAttr("op", op);
      span.AddAttr("path", path);
    }
  }
  return fail;
}

Status FaultInjectionStore::Put(const std::string& path, std::string data) {
  if (ShouldFail(/*is_write=*/true, "Put", path)) {
    return Status::Unavailable("injected fault: Put " + path);
  }
  return base_->Put(path, std::move(data));
}

Result<std::string> FaultInjectionStore::Get(const std::string& path) {
  if (ShouldFail(/*is_write=*/false, "Get", path)) {
    return Status::Unavailable("injected fault: Get " + path);
  }
  return base_->Get(path);
}

Result<BlobInfo> FaultInjectionStore::Stat(const std::string& path) {
  if (ShouldFail(/*is_write=*/false, "Stat", path)) {
    return Status::Unavailable("injected fault: Stat " + path);
  }
  return base_->Stat(path);
}

Status FaultInjectionStore::Delete(const std::string& path) {
  if (ShouldFail(/*is_write=*/true, "Delete", path)) {
    return Status::Unavailable("injected fault: Delete " + path);
  }
  return base_->Delete(path);
}

Result<std::vector<BlobInfo>> FaultInjectionStore::List(
    const std::string& prefix) {
  if (ShouldFail(/*is_write=*/false, "List", prefix)) {
    return Status::Unavailable("injected fault: List " + prefix);
  }
  return base_->List(prefix);
}

Status FaultInjectionStore::StageBlock(const std::string& path,
                                       const std::string& block_id,
                                       std::string data) {
  if (ShouldFail(/*is_write=*/true, "StageBlock", path)) {
    return Status::Unavailable("injected fault: StageBlock " + path);
  }
  return base_->StageBlock(path, block_id, std::move(data));
}

Status FaultInjectionStore::CommitBlockList(
    const std::string& path, const std::vector<std::string>& block_ids) {
  if (ShouldFail(/*is_write=*/true, "CommitBlockList", path)) {
    return Status::Unavailable("injected fault: CommitBlockList " + path);
  }
  return base_->CommitBlockList(path, block_ids);
}

Status FaultInjectionStore::CommitBlockListIf(
    const std::string& path, const std::vector<std::string>& block_ids,
    uint64_t expected_generation) {
  if (ShouldFail(/*is_write=*/true, "CommitBlockListIf", path)) {
    return Status::Unavailable("injected fault: CommitBlockListIf " + path);
  }
  return base_->CommitBlockListIf(path, block_ids, expected_generation);
}

Result<std::vector<std::string>> FaultInjectionStore::GetCommittedBlockList(
    const std::string& path) {
  if (ShouldFail(/*is_write=*/false, "GetCommittedBlockList", path)) {
    return Status::Unavailable("injected fault: GetCommittedBlockList " +
                               path);
  }
  return base_->GetCommittedBlockList(path);
}

}  // namespace polaris::storage
