#ifndef POLARIS_CATALOG_CATALOG_DB_H_
#define POLARIS_CATALOG_CATALOG_DB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/mvcc.h"
#include "common/clock.h"
#include "common/result.h"
#include "format/schema.h"

namespace polaris::catalog {

/// Logical metadata for one table (the SQL DB catalog entry, paper §2.2).
struct TableMeta {
  int64_t table_id = 0;
  std::string name;
  format::Schema schema;
  /// Column each data file's rows are kept sorted by — the partitioning
  /// function p(r) that gives range predicates zone-map pruning power
  /// ("Z-Ordering", paper §2.3). Empty = unsorted.
  std::string sort_column;
  common::Micros created_at = 0;
};

/// One row of the Manifests system table (paper Figure 4): a committed
/// transaction's manifest file for one table.
struct ManifestRecord {
  int64_t table_id = 0;
  /// Order in which snapshot-isolated transactions logically committed.
  uint64_t sequence_id = 0;
  /// Object-store path of the manifest blob (GUID-named).
  std::string path;
  /// Catalog transaction id of the committing transaction; survives
  /// restarts and lets GC identify aborted transactions' leftovers.
  uint64_t txn_id = 0;
  /// Commit timestamp (drives Query-As-Of / Clone-As-Of).
  common::Micros commit_time = 0;
};

/// One row of the Checkpoints system table (paper §5.2).
struct CheckpointRecord {
  int64_t table_id = 0;
  uint64_t sequence_id = 0;
  std::string path;
};

/// A manifest insertion staged by a committing user transaction. The
/// sequence id is assigned inside the commit critical section so that
/// sequence order == commit order even for non-conflicting transactions.
struct PendingManifest {
  int64_t table_id = 0;
  std::string path;
};

/// Granularity at which write-write conflicts are detected (paper §4.4.1).
enum class ConflictGranularity {
  kTable,
  kDataFile,
};

/// The Polaris system catalog: typed access to the logical metadata,
/// Manifests, WriteSets and Checkpoints tables, all stored in the MVCC
/// store so that every user transaction's catalog mutations enjoy snapshot
/// isolation and first-committer-wins conflict detection (paper §3.1, §4.1).
class CatalogDb {
 public:
  explicit CatalogDb(common::Clock* clock) : clock_(clock) {}

  MvccStore* store() { return &store_; }
  common::Clock* clock() { return clock_; }

  std::unique_ptr<MvccTransaction> Begin(
      IsolationMode mode = IsolationMode::kSnapshot) {
    return store_.Begin(mode);
  }

  // --- Logical metadata (DDL) ---------------------------------------------

  /// Creates a table; fails with AlreadyExists if the name is taken in this
  /// transaction's snapshot. `sort_column`, when non-empty, must name a
  /// schema column; data files will keep rows ordered by it (§2.3).
  common::Result<TableMeta> CreateTable(MvccTransaction* txn,
                                        const std::string& name,
                                        const format::Schema& schema,
                                        const std::string& sort_column = "");

  common::Status DropTable(MvccTransaction* txn, const std::string& name);

  common::Result<TableMeta> GetTableByName(MvccTransaction* txn,
                                           const std::string& name);
  common::Result<TableMeta> GetTableById(MvccTransaction* txn,
                                         int64_t table_id);
  common::Result<std::vector<TableMeta>> ListTables(MvccTransaction* txn);

  // --- Manifests table ------------------------------------------------------

  /// All committed manifests for `table_id` visible to `txn`, ascending
  /// sequence order.
  common::Result<std::vector<ManifestRecord>> GetManifests(
      MvccTransaction* txn, int64_t table_id);

  /// Manifests with commit_time <= `as_of` (time travel, paper §6.1).
  common::Result<std::vector<ManifestRecord>> GetManifestsAsOf(
      MvccTransaction* txn, int64_t table_id, common::Micros as_of);

  // --- WriteSets table ------------------------------------------------------

  /// Records that `txn` updated/deleted in `table_id` (table granularity).
  /// The upsert is what makes two concurrent updaters of the same table
  /// conflict at commit (paper §4.1.2 step 1).
  common::Status UpsertWriteSet(MvccTransaction* txn, int64_t table_id);

  /// File-granularity variant (paper §4.4.1): conflicts only when two
  /// transactions touch the same data file.
  common::Status UpsertWriteSetForFile(MvccTransaction* txn, int64_t table_id,
                                       const std::string& data_file_path);

  // --- Checkpoints table -----------------------------------------------------

  common::Status AddCheckpoint(MvccTransaction* txn,
                               const CheckpointRecord& record);

  /// Latest checkpoint with sequence_id <= `max_sequence` visible to `txn`.
  common::Result<std::optional<CheckpointRecord>> GetLatestCheckpoint(
      MvccTransaction* txn, int64_t table_id, uint64_t max_sequence);

  /// All checkpoints of a table visible to `txn`, ascending sequence.
  common::Result<std::vector<CheckpointRecord>> ListCheckpoints(
      MvccTransaction* txn, int64_t table_id);

  /// Deletes Manifests/WriteSets/Checkpoints rows that belong to tables no
  /// longer present in the logical catalog (dropped tables). Their data
  /// blobs then become unreferenced and fall to the garbage collector's
  /// aborted-leftover rule. Returns the number of rows purged.
  common::Result<uint64_t> PurgeDroppedTableRows(MvccTransaction* txn);

  // --- Commit ----------------------------------------------------------------

  /// Commits the catalog transaction, assigning manifest sequence ids to
  /// `pending` inside the commit critical section (§4.1.2 steps 2-4).
  /// On success, `assigned` (if non-null) receives the inserted records.
  /// Returns Conflict when validation fails; the transaction is rolled
  /// back and the caller (the transaction manager) discards its files.
  common::Status Commit(MvccTransaction* txn,
                        const std::vector<PendingManifest>& pending,
                        std::vector<ManifestRecord>* assigned = nullptr);

  void Abort(MvccTransaction* txn) { store_.Abort(txn); }

  /// Lowest begin-sequence among active transactions would normally come
  /// from the transaction manager; the catalog only exposes the latest
  /// commit sequence.
  uint64_t LatestCommitSeq() const { return store_.LatestCommitSeq(); }

 private:
  common::Clock* clock_;
  MvccStore store_;
};

}  // namespace polaris::catalog

#endif  // POLARIS_CATALOG_CATALOG_DB_H_
