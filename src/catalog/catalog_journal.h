#ifndef POLARIS_CATALOG_CATALOG_JOURNAL_H_
#define POLARIS_CATALOG_CATALOG_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/mvcc.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/object_store.h"

namespace polaris::catalog {

/// Cadence knobs for the catalog journal.
struct CatalogJournalOptions {
  /// Records per journal segment before rolling to a new one. Smaller
  /// segments mean finer-grained reclamation; larger ones fewer blobs.
  uint64_t records_per_segment = 128;
  /// ShouldCheckpoint() turns true once this many records accumulate past
  /// the latest checkpoint (0 disables the automatic trigger). The STO
  /// drives the actual checkpoint write during its sweeps.
  uint64_t checkpoint_every_records = 256;
  /// Object-store prefix all journal/checkpoint blobs live under. Must
  /// stay outside the "tables/" namespace the blob GC scans.
  std::string prefix = "catalog/";
  /// ReclaimSupersededSegments keeps this many of the newest journal
  /// segments even when a checkpoint fully covers them — the retention
  /// floor for attached replica tailers, whose cursors trail the primary
  /// by a bounded number of segments. 0 reclaims everything superseded
  /// (a tailer then falls back to checkpoint re-bootstrap on 404).
  uint64_t reclaim_retain_segments = 0;
};

/// One journal segment blob, keyed by the commit sequence of its first
/// record (which is also its blob name).
struct JournalSegmentInfo {
  uint64_t first_seq = 0;
  std::string path;
  uint64_t size = 0;
};

/// Lists journal segments that may contain records with commit_seq >=
/// `since_seq`. Ordering contract: ascending by first_seq, which equals
/// ascending lexicographic blob-name order because segment names are
/// 20-digit zero-padded. The result contains every segment whose
/// first_seq >= since_seq plus the one immediately preceding (its later
/// records may reach since_seq; callers skip the covered prefix). Foreign
/// blobs under the prefix are ignored.
common::Result<std::vector<JournalSegmentInfo>> ListJournalSegmentsSince(
    storage::ObjectStore* store, const CatalogJournalOptions& options,
    uint64_t since_seq);

/// Write-ahead journal for the MVCC catalog — the recovery half of the
/// paper's design, where the catalog inherits the logging of its SQL DB
/// (§4.1). Every committed catalog transaction appends one checksummed,
/// length-prefixed record to the active journal segment blob; a periodic
/// full-state checkpoint blob bounds replay to the tail. Segments are
/// committed with ETag-guarded CommitBlockListIf so two processes can
/// never both extend the same segment (single-writer enforcement).
///
/// Record frame: u32 magic | u32 crc32(body) | u32 body_len | body,
/// where body = u64 commit_seq, varint n, n x (key, has_value, [value]).
/// A torn final record (crash mid-append) fails its checksum or length
/// check and is dropped by Recover; everything before it replays.
///
/// Replay is idempotent because records are full-row images keyed by
/// commit_seq: applying "seq s sets key k to v" twice, or re-applying
/// records already covered by a checkpoint (seq <= checkpoint seq, which
/// Recover skips), converges to the same final map.
///
/// Thread-safe; Append runs under the MvccStore commit lock anyway.
class CatalogJournal {
 public:
  /// `store` and `metrics` must outlive the journal; `metrics` may be
  /// null.
  explicit CatalogJournal(storage::ObjectStore* store,
                          CatalogJournalOptions options = {},
                          obs::MetricsRegistry* metrics = nullptr);

  /// What Recover reconstructed.
  struct RecoveredState {
    /// Live catalog rows after replay.
    std::vector<std::pair<std::string, std::string>> rows;
    /// The state is complete through this commit sequence (0 = empty db).
    uint64_t commit_seq = 0;
    /// Checkpoint the replay started from (0 = none found).
    uint64_t checkpoint_seq = 0;
    uint64_t records_replayed = 0;
    uint64_t segments_scanned = 0;
    /// A torn/corrupt trailing record was found and dropped.
    bool torn_tail = false;
  };

  /// Loads the latest catalog checkpoint, replays the journal tail, and
  /// primes the appender: the next Append starts a fresh segment after
  /// commit_seq, and dead segments (only torn garbage, nothing
  /// recoverable) are deleted so future segment names cannot collide.
  /// Calling Recover again yields an identical RecoveredState.
  common::Result<RecoveredState> Recover();

  /// Primes the appender after a replica promotion: the caller's catalog
  /// is already caught up through `commit_seq` (the promotion drained the
  /// journal tail through its replayer), so nothing is replayed — dead
  /// segments past the watermark are deleted and the next Append rolls a
  /// fresh segment. Skipping the Bootstrap that Recover performs keeps
  /// the promotion unavailability window proportional to the undrained
  /// tail, not the whole catalog.
  common::Status PrimeAfterPromotion(uint64_t commit_seq);

  /// Durably appends a batch of sequenced catalog commits (ascending
  /// commit_seq) as one object-store write: every record is staged, then
  /// a single ETag-guarded block-list commit is the durability point for
  /// the whole batch. Wired as the MvccStore commit listener, so it is
  /// called by the group-commit leader with mutually increasing
  /// sequences; a batch may overfill the active segment past
  /// records_per_segment (the roll decision is per batch). After any
  /// failure the journal fails closed: the blob tail is in an unknown
  /// state, so all further appends are refused until the database is
  /// reopened.
  common::Status AppendBatch(const std::vector<CommitRecord>& records);

  /// Single-record convenience wrapper around AppendBatch.
  common::Status Append(
      uint64_t commit_seq,
      const std::map<std::string, std::optional<std::string>>& writes);

  /// Writes a full-state checkpoint blob at `commit_seq` (idempotent:
  /// re-writing the same sequence is a no-op).
  common::Status WriteCheckpoint(
      uint64_t commit_seq,
      const std::vector<std::pair<std::string, std::string>>& rows);

  /// True once checkpoint_every_records records accumulated past the
  /// latest checkpoint.
  bool ShouldCheckpoint() const;

  /// Deletes journal segments whose every record is covered by the
  /// latest checkpoint, plus superseded checkpoint blobs — except the
  /// newest reclaim_retain_segments segments, which are retained for
  /// attached replica tailers. Returns the number of blobs deleted. (STO
  /// garbage collection calls this.)
  common::Result<uint64_t> ReclaimSupersededSegments();

  /// ListJournalSegmentsSince over this journal's store and prefix.
  common::Result<std::vector<JournalSegmentInfo>> ListSegmentsSince(
      uint64_t since_seq) const;

  // --- Fencing (DESIGN.md §12) -------------------------------------------
  // When an epoch is set (non-zero), every appended batch opens with a
  // PLE1 epoch stamp frame, and an append whose ETag CAS is lost fences
  // the journal instead of merely poisoning it: the loss is evidence that
  // a newer epoch sealed or recreated the active segment, so this writer
  // must never append again. Epoch 0 (the default) disables stamping, so
  // directly constructed journals keep producing byte-identical segments.

  /// Sets the epoch stamped on every subsequent batch.
  void set_epoch(uint64_t epoch);
  uint64_t epoch() const;

  /// Installs a guard consulted at the top of every AppendBatch; a non-OK
  /// return refuses the batch WITHOUT poisoning the journal (nothing was
  /// staged). The engine uses this to reject appends deterministically
  /// once its lease is lost or expired, closing the window where a
  /// segment roll would otherwise race a concurrent promotion.
  void set_fence_guard(std::function<common::Status()> guard);

  /// Installs a listener invoked — without the journal lock held — when
  /// an append self-fences on a lost CAS, so the engine can degrade to
  /// read-only from the commit path itself.
  void set_fence_listener(std::function<void(const common::Status&)> listener);

  /// Marks the journal fenced (idempotent): all further appends fail with
  /// FailedPrecondition. Does not invoke the fence listener — callers who
  /// fence explicitly already know.
  void Fence();
  bool fenced() const;

  // Counters (bench/test bookkeeping).
  uint64_t records_appended() const;
  uint64_t bytes_appended() const;
  uint64_t segments_started() const;
  uint64_t checkpoints_written() const;
  uint64_t last_checkpoint_seq() const;
  uint64_t records_since_checkpoint() const;

 private:
  std::string SegmentPath(uint64_t first_seq) const;
  std::string CheckpointPath(uint64_t seq) const;
  std::string JournalPrefix() const { return options_.prefix + "journal/"; }
  std::string CheckpointPrefix() const { return options_.prefix + "ckpt/"; }

  mutable std::mutex mu_;
  storage::ObjectStore* store_;
  CatalogJournalOptions options_;
  obs::MetricsRegistry* metrics_;

  // Active segment (appender) state.
  std::string active_segment_;
  std::vector<std::string> active_ids_;
  uint64_t active_generation_ = 0;
  uint64_t active_records_ = 0;
  bool poisoned_ = false;

  // Fencing state.
  uint64_t epoch_ = 0;
  bool fenced_ = false;
  std::function<common::Status()> fence_guard_;
  std::function<void(const common::Status&)> fence_listener_;

  uint64_t last_appended_seq_ = 0;
  uint64_t last_checkpoint_seq_ = 0;
  uint64_t records_since_checkpoint_ = 0;

  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t segments_started_ = 0;
  uint64_t checkpoints_written_ = 0;
};

}  // namespace polaris::catalog

#endif  // POLARIS_CATALOG_CATALOG_JOURNAL_H_
