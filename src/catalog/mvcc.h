#ifndef POLARIS_CATALOG_MVCC_H_
#define POLARIS_CATALOG_MVCC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"

namespace polaris::catalog {

/// Isolation level of a catalog transaction. Polaris runs each user
/// transaction's logical-metadata mutations inside one catalog transaction;
/// the catalog's isolation is what gives the user transaction its
/// semantics (paper §4.1, §4.4.2).
enum class IsolationMode {
  /// Reads see the snapshot as of Begin; writes use first-committer-wins.
  kSnapshot,
  /// Reads see the latest committed state at each statement; writes use
  /// first-committer-wins. (Approximates SQL Server RCSI, which resolves
  /// write conflicts by blocking rather than aborting.)
  kReadCommittedSnapshot,
  /// Snapshot reads + commit-time validation of the read set, rejecting
  /// any interleaving that is not serializable (SSI-style validation).
  kSerializable,
};

std::string_view IsolationModeName(IsolationMode mode);

/// Handle for one in-flight catalog transaction. Created by
/// MvccStore::Begin; all reads/writes go through the store.
class MvccTransaction {
 public:
  uint64_t id() const { return id_; }
  uint64_t begin_seq() const { return begin_seq_; }
  IsolationMode mode() const { return mode_; }
  bool finished() const { return finished_; }

 private:
  friend class MvccStore;

  uint64_t id_ = 0;
  uint64_t begin_seq_ = 0;
  IsolationMode mode_ = IsolationMode::kSnapshot;
  bool finished_ = false;
  /// Buffered writes: key -> new value, or nullopt for a delete.
  std::map<std::string, std::optional<std::string>> writes_;
  /// Read-set tracking for serializable validation.
  std::vector<std::string> read_keys_;
  std::vector<std::string> read_prefixes_;
};

/// An in-memory multi-version key-value store with snapshot-isolated
/// transactions — the SQL DB substitute backing the Polaris system catalog
/// (Manifests, WriteSets, Checkpoints, and logical metadata).
///
/// Semantics:
///  * Every committed version carries the commit sequence that created it
///    and (once superseded/deleted) the commit sequence that ended it.
///  * A snapshot `S` sees version `v` iff `v.created_seq <= S` and
///    (`v.deleted_seq == 0` or `v.deleted_seq > S`).
///  * Commit takes the process-wide commit lock (the paper's §4.1.2
///    step 2), validates first-committer-wins on the write set, optionally
///    validates the read set (serializable), then installs all writes at
///    the next commit sequence atomically.
///
/// Thread-safe. Transactions themselves must not be shared across threads.
class MvccStore {
 public:
  MvccStore() = default;

  MvccStore(const MvccStore&) = delete;
  MvccStore& operator=(const MvccStore&) = delete;

  std::unique_ptr<MvccTransaction> Begin(
      IsolationMode mode = IsolationMode::kSnapshot);

  /// Reads `key` as seen by `txn` (own writes win, then snapshot rules).
  /// Returns nullopt when not visible.
  common::Result<std::optional<std::string>> Get(MvccTransaction* txn,
                                                 const std::string& key);

  /// Ordered scan of all visible keys with the given prefix.
  common::Result<std::vector<std::pair<std::string, std::string>>> Scan(
      MvccTransaction* txn, const std::string& prefix);

  /// Buffers a put/upsert (visible to this txn's later reads immediately).
  common::Status Put(MvccTransaction* txn, const std::string& key,
                     std::string value);

  /// Buffers a delete.
  common::Status Delete(MvccTransaction* txn, const std::string& key);

  /// Commit-time hook context: runs under the commit lock, after write
  /// validation, *before* the writes are installed. It can read the latest
  /// committed state and add more writes — Polaris uses this to assign
  /// manifest sequence ids in commit order.
  class CommitContext {
   public:
    /// Latest committed value of `key` (ignores the txn snapshot).
    std::optional<std::string> ReadLatest(const std::string& key) const;
    /// Latest committed values with `prefix`, ordered by key.
    std::vector<std::pair<std::string, std::string>> ScanLatest(
        const std::string& prefix) const;
    /// Adds a write installed together with the transaction.
    void Write(const std::string& key, std::string value);
    /// The commit sequence this transaction will commit at.
    uint64_t commit_seq() const { return commit_seq_; }

   private:
    friend class MvccStore;
    CommitContext(MvccStore* store, MvccTransaction* txn, uint64_t seq)
        : store_(store), txn_(txn), commit_seq_(seq) {}
    MvccStore* store_;
    MvccTransaction* txn_;
    uint64_t commit_seq_;
  };

  using CommitHook = std::function<common::Status(CommitContext*)>;

  /// Durability listener: invoked under the commit lock for every commit,
  /// after validation and the commit hook but *before* the writes are
  /// installed — write-ahead semantics. `writes` is the transaction's full
  /// effective write set (hook-added writes included); nullopt values are
  /// deletes. If the listener fails, the commit fails, nothing is
  /// installed, and the commit sequence is not consumed.
  using CommitListener = std::function<common::Status(
      uint64_t commit_seq,
      const std::map<std::string, std::optional<std::string>>& writes)>;

  /// Installs the durability listener (the catalog journal). Attach before
  /// serving transactions; not synchronized against in-flight commits.
  void SetCommitListener(CommitListener listener) {
    commit_listener_ = std::move(listener);
  }

  /// Validates and commits. Returns Conflict if another transaction
  /// committed a conflicting write (or, in serializable mode, invalidated
  /// the read set) since `txn` began. On any failure the transaction is
  /// finished and its writes are discarded.
  common::Status Commit(MvccTransaction* txn, const CommitHook& hook = {});

  /// Discards the transaction's buffered writes.
  void Abort(MvccTransaction* txn);

  uint64_t LatestCommitSeq() const;

  /// Removes version-chain entries that ended at or before `horizon_seq`
  /// and are not the only remaining version. Returns versions removed.
  uint64_t Vacuum(uint64_t horizon_seq);

  /// Number of live keys at the latest snapshot (testing aid).
  uint64_t LiveKeyCount() const;

  /// Exports all live key-value pairs at the latest committed snapshot.
  /// Basis of zero-data-copy Backup (paper §6.3): the catalog rows are the
  /// only thing a backup needs to copy. When `commit_seq_out` is non-null
  /// it receives the commit sequence the export is consistent with (an
  /// atomic pair, as catalog checkpoints require).
  std::vector<std::pair<std::string, std::string>> ExportLatest(
      uint64_t* commit_seq_out = nullptr) const;

  /// Replaces the entire store contents with `rows`, as a single committed
  /// version at `commit_seq` (recovery/restore pass the sequence the rows
  /// are consistent with). Must not run concurrently with any transaction;
  /// the caller (engine Restore/Open) enforces quiescence.
  void ImportSnapshot(
      const std::vector<std::pair<std::string, std::string>>& rows,
      uint64_t commit_seq = 1);

 private:
  struct Version {
    std::string value;
    uint64_t created_seq = 0;
    uint64_t deleted_seq = 0;  // 0 = still live
  };

  /// Returns the visible value of `key` at snapshot `seq` (no txn overlay).
  std::optional<std::string> GetAtLocked(const std::string& key,
                                         uint64_t seq) const;

  /// Effective snapshot for a read by `txn` (RCSI refreshes per read).
  uint64_t ReadSnapshotLocked(const MvccTransaction* txn) const;

  mutable std::mutex mu_;
  std::mutex commit_mu_;  // the commit lock; acquired before mu_
  std::map<std::string, std::vector<Version>> rows_;
  uint64_t commit_seq_ = 0;
  uint64_t next_txn_id_ = 1;
  CommitListener commit_listener_;  // guarded by commit_mu_ during commits
};

}  // namespace polaris::catalog

#endif  // POLARIS_CATALOG_MVCC_H_
