#ifndef POLARIS_CATALOG_MVCC_H_
#define POLARIS_CATALOG_MVCC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/wait_stats.h"
#include "obs/metrics.h"

namespace polaris::catalog {

/// Isolation level of a catalog transaction. Polaris runs each user
/// transaction's logical-metadata mutations inside one catalog transaction;
/// the catalog's isolation is what gives the user transaction its
/// semantics (paper §4.1, §4.4.2).
enum class IsolationMode {
  /// Reads see the snapshot as of Begin; writes use first-committer-wins.
  kSnapshot,
  /// Reads see the latest committed state at each statement; writes use
  /// first-committer-wins. (Approximates SQL Server RCSI, which resolves
  /// write conflicts by blocking rather than aborting.)
  kReadCommittedSnapshot,
  /// Snapshot reads + commit-time validation of the read set, rejecting
  /// any interleaving that is not serializable (SSI-style validation).
  kSerializable,
};

std::string_view IsolationModeName(IsolationMode mode);

/// Relative urgency at the commit sequencing gate — the catalog-side
/// mirror of engine admission priorities. When committers queue for the
/// gate under contention, higher priorities validate and sequence first.
enum class CommitPriority { kLow = 0, kNormal = 1, kHigh = 2 };

/// One sequenced commit handed to the durability listener. `writes` points
/// at the commit's effective write set (hook-added writes included;
/// nullopt values are deletes) and is valid only for the duration of the
/// listener call.
struct CommitRecord {
  uint64_t commit_seq = 0;
  const std::map<std::string, std::optional<std::string>>* writes = nullptr;
};

/// Handle for one in-flight catalog transaction. Created by
/// MvccStore::Begin; all reads/writes go through the store.
class MvccTransaction {
 public:
  uint64_t id() const { return id_; }
  uint64_t begin_seq() const { return begin_seq_; }
  IsolationMode mode() const { return mode_; }
  bool finished() const { return finished_; }

  CommitPriority priority() const { return priority_; }
  void set_priority(CommitPriority priority) { priority_ = priority; }

  /// Commit sequence this transaction installed at; 0 until Commit
  /// succeeds (aborts and read-only short-circuits leave it 0).
  uint64_t commit_seq() const { return commit_seq_; }

  /// Keys currently buffered in this transaction's own write set. A commit
  /// that fails before its durability point must leave this untouched by
  /// hook-staged writes (write-set pollution regression).
  std::vector<std::string> written_keys() const {
    std::vector<std::string> out;
    out.reserve(writes_.size());
    for (const auto& [key, value] : writes_) out.push_back(key);
    return out;
  }

 private:
  friend class MvccStore;

  uint64_t id_ = 0;
  uint64_t begin_seq_ = 0;
  uint64_t commit_seq_ = 0;
  IsolationMode mode_ = IsolationMode::kSnapshot;
  CommitPriority priority_ = CommitPriority::kNormal;
  bool finished_ = false;
  /// Buffered writes: key -> new value, or nullopt for a delete.
  std::map<std::string, std::optional<std::string>> writes_;
  /// Read-set tracking for serializable validation.
  std::vector<std::string> read_keys_;
  std::vector<std::string> read_prefixes_;
};

/// An in-memory multi-version key-value store with snapshot-isolated
/// transactions — the SQL DB substitute backing the Polaris system catalog
/// (Manifests, WriteSets, Checkpoints, and logical metadata).
///
/// Semantics:
///  * Every committed version carries the commit sequence that created it
///    and (once superseded/deleted) the commit sequence that ended it.
///  * A snapshot `S` sees version `v` iff `v.created_seq <= S` and
///    (`v.deleted_seq == 0` or `v.deleted_seq > S`).
///  * Commits are totally ordered (the paper's §4.1.2 step 2), but the
///    total order is produced by a pipelined group commit rather than one
///    lock held across the durability IO:
///      1. serializable read sets pre-validate outside the gate against
///         the installed store (re-validated later against anything newer);
///      2. a priority-ordered sequencing gate admits one committer at a
///         time to validate (first-committer-wins against installed and
///         pending commits), run its commit hook, and claim the next
///         commit sequence — a short critical section with no IO;
///      3. sequenced commits queue for the durability point; a leader
///         flushes the whole queue through the commit listener as one
///         batch while followers wait on the commit barrier (a follower
///         whose deadline expires detaches without stalling the batch);
///      4. the leader installs the batch in sequence order and wakes the
///         waiters.
///    A commit hook failing does not consume its sequence; a failed
///    durability batch leaves a sequence gap, which journal replay
///    tolerates (records are keyed by ascending commit_seq).
///
/// Thread-safe. Transactions themselves must not be shared across threads.
class MvccStore {
 public:
  MvccStore() = default;

  MvccStore(const MvccStore&) = delete;
  MvccStore& operator=(const MvccStore&) = delete;

  std::unique_ptr<MvccTransaction> Begin(
      IsolationMode mode = IsolationMode::kSnapshot);

  /// Reads `key` as seen by `txn` (own writes win, then snapshot rules).
  /// Returns nullopt when not visible.
  common::Result<std::optional<std::string>> Get(MvccTransaction* txn,
                                                 const std::string& key);

  /// Ordered scan of all visible keys with the given prefix.
  common::Result<std::vector<std::pair<std::string, std::string>>> Scan(
      MvccTransaction* txn, const std::string& prefix);

  /// Buffers a put/upsert (visible to this txn's later reads immediately).
  common::Status Put(MvccTransaction* txn, const std::string& key,
                     std::string value);

  /// Buffers a delete.
  common::Status Delete(MvccTransaction* txn, const std::string& key);

  /// Commit-time hook context: runs inside the sequencing gate, after
  /// write validation, *before* the writes reach the durability point. It
  /// can read the latest committed state — including commits sequenced
  /// ahead of this one that are still waiting on their durability batch —
  /// and add more writes; Polaris uses this to assign manifest sequence
  /// ids in commit order.
  class CommitContext {
   public:
    /// Latest committed-or-sequenced value of `key` (ignores the txn
    /// snapshot).
    std::optional<std::string> ReadLatest(const std::string& key) const;
    /// Latest committed-or-sequenced values with `prefix`, ordered by key.
    std::vector<std::pair<std::string, std::string>> ScanLatest(
        const std::string& prefix) const;
    /// Stages a write installed together with the transaction. Staged
    /// writes are kept apart from the transaction's own write set and
    /// merged into the commit only once it is enqueued for durability, so
    /// a commit that fails afterwards (journal error, crash point) does
    /// not leave hook-authored writes behind in the transaction.
    void Write(const std::string& key, std::string value);
    /// The commit sequence this transaction will commit at.
    uint64_t commit_seq() const { return commit_seq_; }

   private:
    friend class MvccStore;
    CommitContext(MvccStore* store, MvccTransaction* txn, uint64_t seq)
        : store_(store), txn_(txn), commit_seq_(seq) {}
    MvccStore* store_;
    MvccTransaction* txn_;
    uint64_t commit_seq_;
    /// Hook-authored writes, merged into the effective write set only
    /// when the commit is enqueued for the durability point.
    std::map<std::string, std::optional<std::string>> staged_;
  };

  using CommitHook = std::function<common::Status(CommitContext*)>;

  /// Durability listener (the catalog journal): the group-commit leader
  /// invokes it with a batch of one or more sequenced commits in ascending
  /// commit_seq order, after validation and the commit hooks but *before*
  /// any of them is installed — write-ahead semantics. If the listener
  /// fails, every commit in the batch fails and nothing is installed.
  using CommitListener =
      std::function<common::Status(const std::vector<CommitRecord>&)>;

  /// Installs the durability listener (the catalog journal). Attach before
  /// serving transactions; not synchronized against in-flight commits.
  void SetCommitListener(CommitListener listener) {
    commit_listener_ = std::move(listener);
  }

  /// Publishes group-commit counters and flush latency to `metrics` (may
  /// be null). Attach before serving transactions.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches the wait-event registry (may be null = waits unaccounted).
  /// The pipeline then charges COMMIT_GATE (sequencing admission),
  /// COMMIT_BARRIER (group-commit barrier, with a signal-latency split),
  /// STORE_IO (the leader's journal append) and LOCK_INTENT (write-set
  /// validation lock). Attach before serving transactions.
  void set_wait_stats(common::WaitStats* waits) { wait_stats_ = waits; }

  /// Benchmark baseline: when true every commit holds one global lock
  /// across validation, the durability listener, and install — the
  /// pre-group-commit behavior micro_txn_contention compares against.
  void set_serial_commit(bool on) {
    serial_commit_.store(on, std::memory_order_relaxed);
  }

  /// Commit-pipeline counters (surfaced by sys.dm_commit).
  struct CommitPipelineStats {
    uint64_t commits = 0;            ///< commits installed
    uint64_t conflicts = 0;          ///< validation failures
    uint64_t batches = 0;            ///< group-commit flush rounds
    uint64_t batch_records = 0;      ///< commits across all flush rounds
    uint64_t max_batch = 0;          ///< largest flush round
    uint64_t flush_failures = 0;     ///< rounds the listener refused
    uint64_t waiters_detached = 0;   ///< followers that gave up (deadline/KILL)
    uint64_t high_priority = 0;      ///< commits sequenced at kHigh
    uint64_t prevalidated = 0;       ///< read sets validated outside the gate
    uint64_t revalidation_fallbacks = 0;  ///< gate-side full read rescans
    uint64_t gate_waiters = 0;       ///< committers queued for the gate now
    uint64_t pending = 0;            ///< sequenced, not yet installed now
  };
  CommitPipelineStats PipelineStats() const;

  /// Validates and commits. Returns Conflict if another transaction
  /// committed a conflicting write (or, in serializable mode, invalidated
  /// the read set) since `txn` began. On any failure the transaction is
  /// finished and its writes are discarded.
  common::Status Commit(MvccTransaction* txn, const CommitHook& hook = {});

  /// Discards the transaction's buffered writes.
  void Abort(MvccTransaction* txn);

  uint64_t LatestCommitSeq() const;

  /// Removes version-chain entries that ended at or before `horizon_seq`
  /// and are not the only remaining version. Returns versions removed.
  uint64_t Vacuum(uint64_t horizon_seq);

  /// Number of live keys at the latest snapshot (testing aid).
  uint64_t LiveKeyCount() const;

  /// Exports all live key-value pairs at the latest committed snapshot.
  /// Basis of zero-data-copy Backup (paper §6.3): the catalog rows are the
  /// only thing a backup needs to copy. When `commit_seq_out` is non-null
  /// it receives the commit sequence the export is consistent with (an
  /// atomic pair, as catalog checkpoints require).
  std::vector<std::pair<std::string, std::string>> ExportLatest(
      uint64_t* commit_seq_out = nullptr) const;

  /// Replaces the entire store contents with `rows`, as a single committed
  /// version at `commit_seq` (recovery/restore pass the sequence the rows
  /// are consistent with). Must not run concurrently with any transaction;
  /// the caller (engine Restore/Open) enforces quiescence. Also resets the
  /// commit pipeline (pending queue, recent-commit ring, poison flag).
  void ImportSnapshot(
      const std::vector<std::pair<std::string, std::string>>& rows,
      uint64_t commit_seq = 1);

  /// Replica mode: Commit short-circuits for read-only transactions
  /// without claiming a commit sequence (the replicated stream owns the
  /// sequence space) and rejects any transaction carrying writes with
  /// FailedPrecondition. Local commits and ApplyReplicated are the only
  /// sequence sources on a replica.
  void set_read_only(bool on) {
    read_only_.store(on, std::memory_order_relaxed);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_relaxed);
  }

  /// Installs one replicated commit (a journal record shipped from the
  /// primary) as version `commit_seq`, exactly as the group-commit leader
  /// would install a local commit: concurrent snapshot readers at older
  /// sequences keep their views. Idempotent — a sequence at or below the
  /// installed watermark is a no-op (re-reads after a cursor re-bootstrap
  /// land here). Replica-side only; must not race local writers.
  common::Status ApplyReplicated(
      uint64_t commit_seq,
      const std::vector<std::pair<std::string, std::optional<std::string>>>&
          writes);

 private:
  struct Version {
    std::string value;
    uint64_t created_seq = 0;
    uint64_t deleted_seq = 0;  // 0 = still live
  };

  /// One sequenced commit travelling through the group-commit pipeline.
  /// Immutable from enqueue until the leader resolves it, so the leader
  /// can read `writes` outside commit_mu_ while validators read it under
  /// commit_mu_.
  struct CommitEntry {
    uint64_t seq = 0;
    /// Effective write set: txn writes merged with hook-staged writes.
    std::map<std::string, std::optional<std::string>> writes;
    bool done = false;      // status is final; the waiter may return
    bool detached = false;  // waiter gave up; the leader still resolves it
    common::Status status = common::Status::OK();
    /// Steady-clock stamp of the moment the leader resolved this entry
    /// (0 when waits are unaccounted). A barrier follower's wake latency
    /// beyond this is COMMIT_BARRIER signal time.
    int64_t done_at_us = 0;
  };

  /// Returns the visible value of `key` at snapshot `seq` (no txn overlay).
  std::optional<std::string> GetAtLocked(const std::string& key,
                                         uint64_t seq) const;

  /// Effective snapshot for a read by `txn` (RCSI refreshes per read).
  uint64_t ReadSnapshotLocked(const MvccTransaction* txn) const;

  /// Serializable read-set check against the installed store, at snapshot
  /// bound txn->begin_seq_. Requires mu_.
  common::Status ValidateReadsAgainstRowsLocked(
      const MvccTransaction* txn) const;

  /// Gate-side validation: first-committer-wins against installed and
  /// pending commits, plus serializable read re-validation covering
  /// everything newer than `observed_seq` (the installed sequence the
  /// out-of-gate pre-validation covered). Called by the active sequencer;
  /// acquires commit_mu_ then mu_ internally.
  common::Status ValidateForSequencing(MvccTransaction* txn,
                                       uint64_t observed_seq);

  /// One group-commit flush round: claims the queue, appends the batch
  /// via the listener under a neutral deadline, installs it in sequence
  /// order, resolves the entries, and wakes the barrier. `lk` holds
  /// commit_mu_ and is released around the IO.
  void FlushRoundLocked(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  /// The commit-pipeline lock, acquired before mu_ (never the reverse):
  /// guards the sequencing gate, the pending/flush queues, the
  /// recent-commit ring, and flush leadership. Unlike the pre-group-commit
  /// design it is NOT held across the durability IO or the commit hook.
  mutable std::mutex commit_mu_;
  std::condition_variable gate_cv_;   // sequencing admission, by priority
  std::condition_variable flush_cv_;  // group-commit barrier
  std::map<std::string, std::vector<Version>> rows_;  // guarded by mu_
  uint64_t commit_seq_ = 0;  // last installed; guarded by mu_
  uint64_t next_txn_id_ = 1;
  CommitListener commit_listener_;  // set before serving; then read-only

  // --- Sequencing gate (guarded by commit_mu_) ---------------------------
  /// Waiting committers ordered by (priority descending, arrival FIFO).
  std::set<std::pair<int, uint64_t>> gate_waiters_;
  uint64_t gate_ticket_ = 0;
  bool sequencing_ = false;  // a committer is inside the gate
  /// Last allocated commit sequence (>= commit_seq_). Written under
  /// commit_mu_; the active sequencer may read it unlocked (gate handoff
  /// through commit_mu_ orders the accesses).
  uint64_t sequenced_seq_ = 0;

  // --- Group-commit state (guarded by commit_mu_) ------------------------
  std::vector<std::shared_ptr<CommitEntry>> queue_;    // awaiting a flush
  std::vector<std::shared_ptr<CommitEntry>> pending_;  // sequenced, not installed
  bool flush_in_progress_ = false;
  /// Set when a batch reached durability but could not be installed (crash
  /// point): in-memory state is behind the journal, so the pipeline fails
  /// closed until the database is reopened.
  bool pipeline_poisoned_ = false;

  /// Ring of recently installed (commit_seq, written keys), newest at the
  /// back, used to re-validate serializable read sets at the gate without
  /// rescanning rows_. recent_trimmed_to_ is the highest evicted sequence:
  /// the ring covers (recent_trimmed_to_, commit_seq_].
  std::deque<std::pair<uint64_t, std::vector<std::string>>> recent_commits_;
  uint64_t recent_trimmed_to_ = 0;

  std::atomic<bool> serial_commit_{false};
  std::mutex serial_gate_;  // held across the whole commit in serial mode
  std::atomic<bool> read_only_{false};

  obs::MetricsRegistry* metrics_ = nullptr;  // set before serving
  common::WaitStats* wait_stats_ = nullptr;  // set before serving

  // Pipeline counters. All except stat_prevalidated_ are updated under
  // commit_mu_; pre-validation runs outside it, hence the atomic.
  uint64_t stat_commits_ = 0;
  uint64_t stat_conflicts_ = 0;
  uint64_t stat_batches_ = 0;
  uint64_t stat_batch_records_ = 0;
  uint64_t stat_max_batch_ = 0;
  uint64_t stat_flush_failures_ = 0;
  uint64_t stat_waiters_detached_ = 0;
  uint64_t stat_high_priority_ = 0;
  uint64_t stat_revalidation_fallbacks_ = 0;
  std::atomic<uint64_t> stat_prevalidated_{0};
};

}  // namespace polaris::catalog

#endif  // POLARIS_CATALOG_MVCC_H_
