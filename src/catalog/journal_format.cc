#include "catalog/journal_format.h"

#include <array>
#include <cstdio>

namespace polaris::catalog::journal_format {

std::string Pad20(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(v));
  return buf;
}

uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::optional<uint64_t> SeqFromPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find('.');
  if (dot == std::string::npos) return std::nullopt;
  name.resize(dot);
  if (name.empty() || name.size() > 20) return std::nullopt;
  uint64_t value = 0;
  for (char c : name) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

namespace {

// Reads one frame header + crc-verified body at the cursor. Returns false
// on any malformation (short, unknown magic, bad crc); the reader position
// is then unspecified, matching the ParseRecord/ParseFrame contract.
bool ReadVerifiedFrame(common::ByteReader* in, uint32_t* magic,
                       std::string* body) {
  if (in->remaining() < kFrameHeaderSize) return false;
  uint32_t crc, body_len;
  if (!in->GetU32(magic).ok()) return false;
  if (*magic != kRecordMagic && *magic != kEpochMagic) return false;
  if (!in->GetU32(&crc).ok()) return false;
  if (!in->GetU32(&body_len).ok()) return false;
  if (in->remaining() < body_len) return false;
  body->assign(body_len, '\0');
  if (!in->GetRaw(body->data(), body_len).ok()) return false;
  return Crc32(*body) == crc;
}

bool DecodeRecordBody(std::string_view body, ParsedRecord* record) {
  common::ByteReader body_in(body);
  uint64_t count;
  if (!body_in.GetU64(&record->commit_seq).ok()) return false;
  if (!body_in.GetVarint(&count).ok()) return false;
  record->writes.clear();
  record->writes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    uint8_t has_value;
    if (!body_in.GetString(&key).ok()) return false;
    if (!body_in.GetU8(&has_value).ok()) return false;
    std::optional<std::string> value;
    if (has_value != 0) {
      std::string v;
      if (!body_in.GetString(&v).ok()) return false;
      value = std::move(v);
    }
    record->writes.emplace_back(std::move(key), std::move(value));
  }
  return body_in.AtEnd();
}

bool DecodeEpochBody(std::string_view body, EpochMarker* marker) {
  common::ByteReader body_in(body);
  uint64_t epoch;
  uint8_t kind;
  if (!body_in.GetU64(&epoch).ok()) return false;
  if (!body_in.GetU8(&kind).ok()) return false;
  if (!body_in.AtEnd() || kind > 1) return false;
  marker->epoch = epoch;
  marker->seal = kind == 1;
  return true;
}

}  // namespace

std::optional<ParsedRecord> ParseRecord(common::ByteReader* in) {
  uint32_t magic;
  std::string body;
  if (!ReadVerifiedFrame(in, &magic, &body)) return std::nullopt;
  if (magic != kRecordMagic) return std::nullopt;
  ParsedRecord record;
  if (!DecodeRecordBody(body, &record)) return std::nullopt;
  return record;
}

std::string EncodeEpochMarker(uint64_t epoch, bool seal) {
  common::ByteWriter body;
  body.PutU64(epoch);
  body.PutU8(seal ? 1 : 0);
  common::ByteWriter frame;
  frame.PutU32(kEpochMagic);
  frame.PutU32(Crc32(body.data()));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data().data(), body.size());
  return frame.Release();
}

FrameKind ParseFrame(common::ByteReader* in, ParsedRecord* record,
                     EpochMarker* epoch) {
  uint32_t magic;
  std::string body;
  if (!ReadVerifiedFrame(in, &magic, &body)) return FrameKind::kTorn;
  if (magic == kEpochMagic) {
    return DecodeEpochBody(body, epoch) ? FrameKind::kEpoch : FrameKind::kTorn;
  }
  return DecodeRecordBody(body, record) ? FrameKind::kRecord : FrameKind::kTorn;
}

std::string EncodeRecord(
    uint64_t commit_seq,
    const std::map<std::string, std::optional<std::string>>& writes) {
  common::ByteWriter body;
  body.PutU64(commit_seq);
  body.PutVarint(writes.size());
  for (const auto& [key, value] : writes) {
    body.PutString(key);
    body.PutU8(value.has_value() ? 1 : 0);
    if (value.has_value()) body.PutString(*value);
  }
  common::ByteWriter frame;
  frame.PutU32(kRecordMagic);
  frame.PutU32(Crc32(body.data()));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data().data(), body.size());
  return frame.Release();
}

std::string EncodeCheckpoint(
    uint64_t commit_seq,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  common::ByteWriter out;
  out.PutU32(kCheckpointMagic);
  out.PutU64(commit_seq);
  out.PutVarint(rows.size());
  for (const auto& [key, value] : rows) {
    out.PutString(key);
    out.PutString(value);
  }
  return out.Release();
}

bool DecodeCheckpoint(std::string_view blob, uint64_t* commit_seq,
                      std::map<std::string, std::string>* rows) {
  common::ByteReader in(blob);
  uint32_t magic;
  uint64_t seq, count;
  if (!in.GetU32(&magic).ok() || magic != kCheckpointMagic) return false;
  if (!in.GetU64(&seq).ok() || !in.GetVarint(&count).ok()) return false;
  std::map<std::string, std::string> decoded;
  for (uint64_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!in.GetString(&key).ok() || !in.GetString(&value).ok()) return false;
    decoded.emplace(std::move(key), std::move(value));
  }
  if (!in.AtEnd()) return false;
  *commit_seq = seq;
  *rows = std::move(decoded);
  return true;
}

}  // namespace polaris::catalog::journal_format
