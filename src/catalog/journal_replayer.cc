#include "catalog/journal_replayer.h"

#include <algorithm>
#include <map>
#include <thread>

#include "catalog/journal_format.h"
#include "common/bytes.h"
#include "common/logging.h"

namespace polaris::catalog {

using common::Result;
using common::Status;

namespace jf = journal_format;

namespace {

/// Per-segment scan product. `end_offset` is the byte position just past
/// the last frame that parsed cleanly — the resumable offset for that
/// segment. `clean` is false when trailing bytes failed to parse (torn
/// tail or poisoned remnant).
struct SegmentScan {
  std::vector<jf::ParsedRecord> records;
  uint64_t end_offset = 0;
  bool clean = true;
  Status status = Status::OK();
};

void ScanSegment(storage::ObjectStore* store, const JournalSegmentInfo& seg,
                 SegmentScan* out) {
  auto blob = store->Get(seg.path);
  if (!blob.ok()) {
    out->status = blob.status();
    return;
  }
  common::ByteReader in(*blob);
  while (!in.AtEnd()) {
    jf::ParsedRecord record;
    jf::EpochMarker marker;
    switch (jf::ParseFrame(&in, &record, &marker)) {
      case jf::FrameKind::kTorn:
        out->clean = false;
        return;
      case jf::FrameKind::kEpoch:
        // Epoch stamps/seals carry no catalog state; skip past them.
        out->end_offset = in.position();
        break;
      case jf::FrameKind::kRecord:
        out->end_offset = in.position();
        out->records.push_back(std::move(record));
        break;
    }
  }
}

}  // namespace

Result<JournalReplayer::BootstrapResult> JournalReplayer::Bootstrap(
    size_t parallelism) const {
  BootstrapResult result;
  auto& state = result.state;

  // --- Latest readable checkpoint -----------------------------------------
  std::map<std::string, std::string> live;
  POLARIS_ASSIGN_OR_RETURN(auto checkpoints,
                           store_->List(options_.prefix + "ckpt/"));
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    auto blob = store_->Get(it->path);
    if (!blob.ok()) continue;
    uint64_t seq;
    std::map<std::string, std::string> rows;
    if (!jf::DecodeCheckpoint(*blob, &seq, &rows)) continue;
    live = std::move(rows);
    state.checkpoint_seq = seq;
    break;
  }

  // --- Journal tail replay -------------------------------------------------
  // ListJournalSegmentsSince(checkpoint_seq + 1) is exactly the O(tail)
  // replay set: every segment fully covered by the checkpoint is pruned,
  // the straddling one is kept (its covered records are skipped by the
  // `seq <= last_seq` check in the merge below).
  uint64_t last_seq = state.checkpoint_seq;
  POLARIS_ASSIGN_OR_RETURN(
      auto replay,
      ListJournalSegmentsSince(store_, options_, state.checkpoint_seq + 1));

  std::vector<SegmentScan> scans(replay.size());
  size_t workers = std::min(parallelism, replay.size());
  if (workers <= 1) {
    for (size_t i = 0; i < replay.size(); ++i) {
      ScanSegment(store_, replay[i], &scans[i]);
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (size_t i = w; i < replay.size(); i += workers) {
          ScanSegment(store_, replay[i], &scans[i]);
        }
      });
    }
    for (auto& t : threads) t.join();
  }

  // Serial merge in first_seq order restores the total commit order the
  // per-segment scans relaxed.
  for (size_t i = 0; i < replay.size(); ++i) {
    POLARIS_RETURN_IF_ERROR(scans[i].status);
    state.segments_scanned++;
    for (auto& record : scans[i].records) {
      if (record.commit_seq <= last_seq) continue;  // covered already
      for (auto& [key, value] : record.writes) {
        if (value.has_value()) {
          live[key] = std::move(*value);
        } else {
          live.erase(key);
        }
      }
      last_seq = record.commit_seq;
      state.records_replayed++;
    }
    if (!scans[i].clean) {
      // Torn or corrupt record: a crash mid-append. Everything before it
      // is intact; the record itself never reached its durability point,
      // so dropping it *is* the correct recovery outcome.
      state.torn_tail = true;
      POLARIS_LOG(kWarn, "journal")
          << "dropping torn/corrupt record tail in " << replay[i].path
          << " after seq " << last_seq;
    }
  }
  state.commit_seq = last_seq;

  state.rows.reserve(live.size());
  for (auto& [key, value] : live) state.rows.emplace_back(key, value);

  result.cursor.applied_seq = last_seq;
  if (!replay.empty()) {
    result.cursor.segment_first_seq = replay.back().first_seq;
    result.cursor.byte_offset = scans.back().end_offset;
  }
  return result;
}

Result<JournalReplayer::TailResult> JournalReplayer::TailOnce(
    ReplayCursor* cursor, const ApplyFn& apply) const {
  TailResult result;
  POLARIS_ASSIGN_OR_RETURN(
      auto segments,
      ListJournalSegmentsSince(store_, options_, cursor->applied_seq + 1));
  if (segments.empty()) {
    // An empty listing is only benign when the cursor never sat inside a
    // segment: the predecessor rule of ListJournalSegmentsSince would
    // otherwise have returned at least the cursor's own segment, so its
    // absence means GC truncated the whole journal past us (new state is
    // only reachable via a checkpoint).
    if (cursor->segment_first_seq > 0) {
      return Status::NotFound(
          "journal truncated past replica cursor (segment " +
          std::to_string(cursor->segment_first_seq) +
          " is gone); re-bootstrap required");
    }
    return result;  // virgin journal: nothing to do
  }

  // GC ran past us: the oldest surviving segment starts beyond the next
  // sequence we need, so the records in between are only reachable via a
  // checkpoint. (A sequence gap from a failed durability batch also
  // lands here; the re-bootstrap it triggers is idempotent and merely
  // wasteful, and that combination — poisoned primary, then GC, with the
  // replica behind — is vanishingly rare.)
  if (segments.front().first_seq > cursor->applied_seq + 1) {
    return Status::NotFound(
        "journal truncated past replica cursor (oldest segment starts at " +
        std::to_string(segments.front().first_seq) + ", need " +
        std::to_string(cursor->applied_seq + 1) + "); re-bootstrap required");
  }

  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& seg = segments[i];
    if (seg.first_seq < cursor->segment_first_seq) continue;  // already done
    uint64_t offset =
        seg.first_seq == cursor->segment_first_seq ? cursor->byte_offset : 0;
    // NotFound here means GC deleted the segment between List and Get;
    // propagate so the caller re-bootstraps.
    POLARIS_ASSIGN_OR_RETURN(std::string data, store_->Get(seg.path));
    if (offset > data.size()) {
      // Segments are prefix-stable, so a shrink means the name was
      // reused (dead segment deleted by primary recovery, then
      // recreated). Treat like truncation: rebuild from a checkpoint.
      return Status::NotFound("journal segment " + seg.path +
                              " shrank below replica cursor offset; "
                              "re-bootstrap required");
    }
    cursor->segment_first_seq = seg.first_seq;
    cursor->byte_offset = offset;
    result.segments_visited++;
    common::ByteReader in(std::string_view(data).substr(offset));
    bool segment_done = false;
    while (!in.AtEnd() && !segment_done) {
      jf::ParsedRecord record;
      jf::EpochMarker marker;
      switch (jf::ParseFrame(&in, &record, &marker)) {
        case jf::FrameKind::kTorn:
          if (i + 1 < segments.size()) {
            // A later segment exists, so the primary gave up on this one
            // (torn append -> poison -> fresh segment on reopen, or a
            // sealed-over torn tail). The unparsable remainder is dead
            // garbage; move past it.
            segment_done = true;
            break;
          }
          // Newest segment: this is (or may be) a mid-append torn tail.
          // Hold the cursor before the bad frame; once the primary's next
          // commit lands the re-read from here parses cleanly.
          result.torn_tail = true;
          return result;
        case jf::FrameKind::kEpoch:
          // Epoch stamps/seals carry no catalog state; skip past them.
          cursor->byte_offset = offset + in.position();
          break;
        case jf::FrameKind::kRecord:
          if (record.commit_seq > cursor->applied_seq) {
            POLARIS_RETURN_IF_ERROR(apply(record.commit_seq, record.writes));
            cursor->applied_seq = record.commit_seq;
            result.records_applied++;
          }
          cursor->byte_offset = offset + in.position();
          break;
      }
    }
  }
  return result;
}

}  // namespace polaris::catalog
