#include "catalog/catalog_db.h"

#include <cinttypes>
#include <cstdio>

#include "common/bytes.h"
#include "common/crashpoint.h"

namespace polaris::catalog {

using common::ByteReader;
using common::ByteWriter;
using common::Result;
using common::Status;

namespace {

std::string PadId(int64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%012" PRId64, id);
  return buf;
}

std::string PadSeq(uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%020" PRIu64, seq);
  return buf;
}

std::string TableNameKey(const std::string& name) { return "tbl/name/" + name; }
std::string TableIdKey(int64_t id) { return "tbl/id/" + PadId(id); }
std::string ManifestPrefix(int64_t table_id) {
  return "man/" + PadId(table_id) + "/";
}
std::string ManifestKey(int64_t table_id, uint64_t seq) {
  return ManifestPrefix(table_id) + PadSeq(seq);
}
std::string WriteSetTableKey(int64_t table_id) {
  return "ws/" + PadId(table_id);
}
std::string WriteSetFileKey(int64_t table_id, const std::string& file) {
  return "ws/" + PadId(table_id) + "/f/" + file;
}
std::string CheckpointPrefix(int64_t table_id) {
  return "ckpt/" + PadId(table_id) + "/";
}
std::string CheckpointKey(int64_t table_id, uint64_t seq) {
  return CheckpointPrefix(table_id) + PadSeq(seq);
}
constexpr char kNextTableIdKey[] = "meta/next_table_id";

std::string EncodeTableMeta(const TableMeta& meta) {
  ByteWriter out;
  out.PutI64(meta.table_id);
  out.PutString(meta.name);
  meta.schema.Serialize(&out);
  out.PutString(meta.sort_column);
  out.PutI64(meta.created_at);
  return out.Release();
}

Result<TableMeta> DecodeTableMeta(const std::string& blob) {
  ByteReader in(blob);
  TableMeta meta;
  POLARIS_RETURN_IF_ERROR(in.GetI64(&meta.table_id));
  POLARIS_RETURN_IF_ERROR(in.GetString(&meta.name));
  POLARIS_ASSIGN_OR_RETURN(meta.schema, format::Schema::Deserialize(&in));
  POLARIS_RETURN_IF_ERROR(in.GetString(&meta.sort_column));
  POLARIS_RETURN_IF_ERROR(in.GetI64(&meta.created_at));
  return meta;
}

std::string EncodeManifestValue(const std::string& path, uint64_t txn_id,
                                common::Micros commit_time) {
  ByteWriter out;
  out.PutString(path);
  out.PutU64(txn_id);
  out.PutI64(commit_time);
  return out.Release();
}

Status DecodeManifestValue(const std::string& blob, ManifestRecord* record) {
  ByteReader in(blob);
  POLARIS_RETURN_IF_ERROR(in.GetString(&record->path));
  POLARIS_RETURN_IF_ERROR(in.GetU64(&record->txn_id));
  POLARIS_RETURN_IF_ERROR(in.GetI64(&record->commit_time));
  return Status::OK();
}

/// Parses the trailing PadSeq() component of a manifest/checkpoint key.
Result<uint64_t> ParseKeySequence(const std::string& key) {
  if (key.size() < 20) return Status::Corruption("bad catalog key: " + key);
  uint64_t seq = 0;
  for (size_t i = key.size() - 20; i < key.size(); ++i) {
    char c = key[i];
    if (c < '0' || c > '9') {
      return Status::Corruption("bad sequence in key: " + key);
    }
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

Result<TableMeta> CatalogDb::CreateTable(MvccTransaction* txn,
                                         const std::string& name,
                                         const format::Schema& schema,
                                         const std::string& sort_column) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("bad table name: " + name);
  }
  if (!sort_column.empty() && schema.FindColumn(sort_column) < 0) {
    return Status::InvalidArgument("sort column not in schema: " +
                                   sort_column);
  }
  POLARIS_ASSIGN_OR_RETURN(auto existing, store_.Get(txn, TableNameKey(name)));
  if (existing.has_value()) {
    return Status::AlreadyExists("table exists: " + name);
  }
  // Allocate a table id. Concurrent DDL conflicts on this counter key and
  // retries — an acceptable cost for rare DDL.
  POLARIS_ASSIGN_OR_RETURN(auto counter, store_.Get(txn, kNextTableIdKey));
  int64_t next_id = 1001;
  if (counter.has_value()) {
    ByteReader in(*counter);
    POLARIS_RETURN_IF_ERROR(in.GetI64(&next_id));
  }
  ByteWriter counter_out;
  counter_out.PutI64(next_id + 1);
  POLARIS_RETURN_IF_ERROR(
      store_.Put(txn, kNextTableIdKey, counter_out.Release()));

  TableMeta meta;
  meta.table_id = next_id;
  meta.name = name;
  meta.schema = schema;
  meta.sort_column = sort_column;
  meta.created_at = clock_->Now();
  POLARIS_RETURN_IF_ERROR(
      store_.Put(txn, TableNameKey(name), EncodeTableMeta(meta)));
  POLARIS_RETURN_IF_ERROR(store_.Put(txn, TableIdKey(next_id), name));
  return meta;
}

Status CatalogDb::DropTable(MvccTransaction* txn, const std::string& name) {
  POLARIS_ASSIGN_OR_RETURN(auto existing, store_.Get(txn, TableNameKey(name)));
  if (!existing.has_value()) {
    return Status::NotFound("table not found: " + name);
  }
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta, DecodeTableMeta(*existing));
  POLARIS_RETURN_IF_ERROR(store_.Delete(txn, TableNameKey(name)));
  POLARIS_RETURN_IF_ERROR(store_.Delete(txn, TableIdKey(meta.table_id)));
  // Manifests/WriteSets/Checkpoints rows are left for the garbage
  // collector, which owns physical cleanup (paper §5.3).
  return Status::OK();
}

Result<TableMeta> CatalogDb::GetTableByName(MvccTransaction* txn,
                                            const std::string& name) {
  POLARIS_ASSIGN_OR_RETURN(auto value, store_.Get(txn, TableNameKey(name)));
  if (!value.has_value()) {
    return Status::NotFound("table not found: " + name);
  }
  return DecodeTableMeta(*value);
}

Result<TableMeta> CatalogDb::GetTableById(MvccTransaction* txn,
                                          int64_t table_id) {
  POLARIS_ASSIGN_OR_RETURN(auto name, store_.Get(txn, TableIdKey(table_id)));
  if (!name.has_value()) {
    return Status::NotFound("table id not found: " + std::to_string(table_id));
  }
  return GetTableByName(txn, *name);
}

Result<std::vector<TableMeta>> CatalogDb::ListTables(MvccTransaction* txn) {
  POLARIS_ASSIGN_OR_RETURN(auto rows, store_.Scan(txn, "tbl/name/"));
  std::vector<TableMeta> out;
  out.reserve(rows.size());
  for (const auto& [key, value] : rows) {
    (void)key;
    POLARIS_ASSIGN_OR_RETURN(TableMeta meta, DecodeTableMeta(value));
    out.push_back(std::move(meta));
  }
  return out;
}

Result<std::vector<ManifestRecord>> CatalogDb::GetManifests(
    MvccTransaction* txn, int64_t table_id) {
  POLARIS_ASSIGN_OR_RETURN(auto rows,
                           store_.Scan(txn, ManifestPrefix(table_id)));
  std::vector<ManifestRecord> out;
  out.reserve(rows.size());
  for (const auto& [key, value] : rows) {
    ManifestRecord record;
    record.table_id = table_id;
    POLARIS_ASSIGN_OR_RETURN(record.sequence_id, ParseKeySequence(key));
    POLARIS_RETURN_IF_ERROR(DecodeManifestValue(value, &record));
    out.push_back(std::move(record));
  }
  return out;  // scan order == ascending sequence (keys are zero-padded)
}

Result<std::vector<ManifestRecord>> CatalogDb::GetManifestsAsOf(
    MvccTransaction* txn, int64_t table_id, common::Micros as_of) {
  POLARIS_ASSIGN_OR_RETURN(auto all, GetManifests(txn, table_id));
  std::vector<ManifestRecord> out;
  for (auto& record : all) {
    if (record.commit_time <= as_of) out.push_back(std::move(record));
  }
  return out;
}

Status CatalogDb::UpsertWriteSet(MvccTransaction* txn, int64_t table_id) {
  const std::string key = WriteSetTableKey(table_id);
  POLARIS_ASSIGN_OR_RETURN(auto current, store_.Get(txn, key));
  int64_t counter = 0;
  if (current.has_value()) {
    ByteReader in(*current);
    POLARIS_RETURN_IF_ERROR(in.GetI64(&counter));
  }
  ByteWriter out;
  out.PutI64(counter + 1);
  return store_.Put(txn, key, out.Release());
}

Status CatalogDb::UpsertWriteSetForFile(MvccTransaction* txn,
                                        int64_t table_id,
                                        const std::string& data_file_path) {
  const std::string key = WriteSetFileKey(table_id, data_file_path);
  POLARIS_ASSIGN_OR_RETURN(auto current, store_.Get(txn, key));
  int64_t counter = 0;
  if (current.has_value()) {
    ByteReader in(*current);
    POLARIS_RETURN_IF_ERROR(in.GetI64(&counter));
  }
  ByteWriter out;
  out.PutI64(counter + 1);
  return store_.Put(txn, key, out.Release());
}

Status CatalogDb::AddCheckpoint(MvccTransaction* txn,
                                const CheckpointRecord& record) {
  return store_.Put(txn, CheckpointKey(record.table_id, record.sequence_id),
                    record.path);
}

Result<std::optional<CheckpointRecord>> CatalogDb::GetLatestCheckpoint(
    MvccTransaction* txn, int64_t table_id, uint64_t max_sequence) {
  POLARIS_ASSIGN_OR_RETURN(auto rows,
                           store_.Scan(txn, CheckpointPrefix(table_id)));
  std::optional<CheckpointRecord> best;
  for (const auto& [key, value] : rows) {
    POLARIS_ASSIGN_OR_RETURN(uint64_t seq, ParseKeySequence(key));
    if (seq > max_sequence) break;
    CheckpointRecord record;
    record.table_id = table_id;
    record.sequence_id = seq;
    record.path = value;
    best = std::move(record);
  }
  return best;
}

Result<std::vector<CheckpointRecord>> CatalogDb::ListCheckpoints(
    MvccTransaction* txn, int64_t table_id) {
  POLARIS_ASSIGN_OR_RETURN(auto rows,
                           store_.Scan(txn, CheckpointPrefix(table_id)));
  std::vector<CheckpointRecord> out;
  out.reserve(rows.size());
  for (const auto& [key, value] : rows) {
    CheckpointRecord record;
    record.table_id = table_id;
    POLARIS_ASSIGN_OR_RETURN(record.sequence_id, ParseKeySequence(key));
    record.path = value;
    out.push_back(std::move(record));
  }
  return out;
}

Result<uint64_t> CatalogDb::PurgeDroppedTableRows(MvccTransaction* txn) {
  uint64_t purged = 0;
  std::map<int64_t, bool> exists_cache;
  auto table_exists = [&](int64_t table_id) -> Result<bool> {
    auto it = exists_cache.find(table_id);
    if (it != exists_cache.end()) return it->second;
    POLARIS_ASSIGN_OR_RETURN(auto name, store_.Get(txn, TableIdKey(table_id)));
    bool exists = name.has_value();
    exists_cache[table_id] = exists;
    return exists;
  };
  // All three physical-metadata tables key rows as "<prefix><padded id>...".
  for (const std::string prefix : {"man/", "ckpt/", "ws/"}) {
    POLARIS_ASSIGN_OR_RETURN(auto rows, store_.Scan(txn, prefix));
    for (const auto& [key, value] : rows) {
      (void)value;
      if (key.size() < prefix.size() + 12) continue;
      int64_t table_id = 0;
      bool valid = true;
      for (size_t i = prefix.size(); i < prefix.size() + 12; ++i) {
        if (key[i] < '0' || key[i] > '9') {
          valid = false;
          break;
        }
        table_id = table_id * 10 + (key[i] - '0');
      }
      if (!valid) continue;
      POLARIS_ASSIGN_OR_RETURN(bool exists, table_exists(table_id));
      if (!exists) {
        POLARIS_RETURN_IF_ERROR(store_.Delete(txn, key));
        ++purged;
      }
    }
  }
  return purged;
}

Status CatalogDb::Commit(MvccTransaction* txn,
                         const std::vector<PendingManifest>& pending,
                         std::vector<ManifestRecord>* assigned) {
  uint64_t txn_id = txn->id();
  common::Micros now = clock_->Now();
  std::vector<ManifestRecord> records;
  auto hook = [&](MvccStore::CommitContext* ctx) -> Status {
    POLARIS_CRASH_POINT(common::crash::kCatalogCommitBeforeManifests);
    // Assign manifest sequence ids in commit order: next = max visible + 1
    // per table, computed under the commit lock so that even two
    // non-conflicting committers get distinct, ordered ids.
    std::map<int64_t, uint64_t> next_seq;
    for (const auto& manifest : pending) {
      auto it = next_seq.find(manifest.table_id);
      if (it == next_seq.end()) {
        auto rows = ctx->ScanLatest(ManifestPrefix(manifest.table_id));
        uint64_t max_seq = 0;
        if (!rows.empty()) {
          auto seq = ParseKeySequence(rows.back().first);
          if (!seq.ok()) return seq.status();
          max_seq = *seq;
        }
        it = next_seq.emplace(manifest.table_id, max_seq + 1).first;
      }
      ManifestRecord record;
      record.table_id = manifest.table_id;
      record.sequence_id = it->second++;
      record.path = manifest.path;
      record.txn_id = txn_id;
      record.commit_time = now;
      ctx->Write(ManifestKey(record.table_id, record.sequence_id),
                 EncodeManifestValue(record.path, txn_id, now));
      records.push_back(std::move(record));
    }
    // Manifests rows are buffered in the pending transaction; the journal
    // append (the durability point) has not run yet.
    POLARIS_CRASH_POINT(common::crash::kCatalogCommitAfterManifests);
    return Status::OK();
  };
  POLARIS_RETURN_IF_ERROR(store_.Commit(txn, hook));
  if (assigned != nullptr) *assigned = std::move(records);
  return Status::OK();
}

}  // namespace polaris::catalog
