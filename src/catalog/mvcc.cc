#include "catalog/mvcc.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <unordered_set>

#include "common/crashpoint.h"
#include "common/trace_context.h"

namespace polaris::catalog {

using common::Result;
using common::Status;

namespace {

/// How many installed commits the gate keeps around (seq + written keys)
/// for serializable read re-validation. A pre-validation older than the
/// ring falls back to a full rescan of the read set.
constexpr size_t kRecentCommitCap = 256;

/// Overlays `writes` restricted to `prefix` onto the sorted (key, value)
/// vector `out`: values replace or insert, tombstones erase.
void OverlayPrefix(
    std::vector<std::pair<std::string, std::string>>* out,
    const std::map<std::string, std::optional<std::string>>& writes,
    const std::string& prefix) {
  for (auto it = writes.lower_bound(prefix); it != writes.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    auto pos = std::lower_bound(
        out->begin(), out->end(), it->first,
        [](const auto& pair, const std::string& key) {
          return pair.first < key;
        });
    bool exists = pos != out->end() && pos->first == it->first;
    if (it->second.has_value()) {
      if (exists) {
        pos->second = *it->second;
      } else {
        out->insert(pos, {it->first, *it->second});
      }
    } else if (exists) {
      out->erase(pos);
    }
  }
}

}  // namespace

std::string_view IsolationModeName(IsolationMode mode) {
  switch (mode) {
    case IsolationMode::kSnapshot:
      return "Snapshot";
    case IsolationMode::kReadCommittedSnapshot:
      return "ReadCommittedSnapshot";
    case IsolationMode::kSerializable:
      return "Serializable";
  }
  return "Unknown";
}

std::unique_ptr<MvccTransaction> MvccStore::Begin(IsolationMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn = std::unique_ptr<MvccTransaction>(new MvccTransaction());
  txn->id_ = next_txn_id_++;
  txn->begin_seq_ = commit_seq_;
  txn->mode_ = mode;
  return txn;
}

uint64_t MvccStore::ReadSnapshotLocked(const MvccTransaction* txn) const {
  if (txn->mode_ == IsolationMode::kReadCommittedSnapshot) {
    return commit_seq_;  // latest committed at each read
  }
  return txn->begin_seq_;
}

std::optional<std::string> MvccStore::GetAtLocked(const std::string& key,
                                                  uint64_t seq) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  // Versions are appended in commit order; find the newest visible one.
  for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
    if (v->created_seq <= seq) {
      if (v->deleted_seq == 0 || v->deleted_seq > seq) return v->value;
      return std::nullopt;  // newest visible version is a deleted one
    }
  }
  return std::nullopt;
}

Result<std::optional<std::string>> MvccStore::Get(MvccTransaction* txn,
                                                  const std::string& key) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  auto write = txn->writes_.find(key);
  if (write != txn->writes_.end()) {
    return write->second;  // own write (value or tombstone)
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (txn->mode_ == IsolationMode::kSerializable) {
    txn->read_keys_.push_back(key);
  }
  return GetAtLocked(key, ReadSnapshotLocked(txn));
}

Result<std::vector<std::pair<std::string, std::string>>> MvccStore::Scan(
    MvccTransaction* txn, const std::string& prefix) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  std::vector<std::pair<std::string, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (txn->mode_ == IsolationMode::kSerializable) {
      txn->read_prefixes_.push_back(prefix);
    }
    uint64_t seq = ReadSnapshotLocked(txn);
    for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      auto value = GetAtLocked(it->first, seq);
      if (value) out.emplace_back(it->first, std::move(*value));
    }
  }
  // Overlay own writes (and drop own deletes).
  OverlayPrefix(&out, txn->writes_, prefix);
  return out;
}

Status MvccStore::Put(MvccTransaction* txn, const std::string& key,
                      std::string value) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  txn->writes_[key] = std::move(value);
  return Status::OK();
}

Status MvccStore::Delete(MvccTransaction* txn, const std::string& key) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  txn->writes_[key] = std::nullopt;
  return Status::OK();
}

std::optional<std::string> MvccStore::CommitContext::ReadLatest(
    const std::string& key) const {
  // Own writes win: hook-staged first, then the transaction's.
  auto staged = staged_.find(key);
  if (staged != staged_.end()) return staged->second;
  auto write = txn_->writes_.find(key);
  if (write != txn_->writes_.end()) return write->second;
  // Commits sequenced ahead of us but still waiting on their durability
  // batch are logically committed before us; newest wins.
  {
    std::lock_guard<std::mutex> lock(store_->commit_mu_);
    for (auto it = store_->pending_.rbegin(); it != store_->pending_.rend();
         ++it) {
      auto w = (*it)->writes.find(key);
      if (w != (*it)->writes.end()) return w->second;
    }
  }
  std::lock_guard<std::mutex> lock(store_->mu_);
  return store_->GetAtLocked(key, store_->commit_seq_);
}

std::vector<std::pair<std::string, std::string>>
MvccStore::CommitContext::ScanLatest(const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(store_->mu_);
    for (auto it = store_->rows_.lower_bound(prefix);
         it != store_->rows_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      auto value = store_->GetAtLocked(it->first, store_->commit_seq_);
      if (value) out.emplace_back(it->first, std::move(*value));
    }
  }
  {
    // Overlay sequenced-but-uninstalled commits in sequence order, so a
    // hook assigning manifest sequence ids sees the ids already claimed
    // by commits queued ahead of it.
    std::lock_guard<std::mutex> lock(store_->commit_mu_);
    for (const auto& entry : store_->pending_) {
      OverlayPrefix(&out, entry->writes, prefix);
    }
  }
  OverlayPrefix(&out, txn_->writes_, prefix);
  OverlayPrefix(&out, staged_, prefix);
  return out;
}

void MvccStore::CommitContext::Write(const std::string& key,
                                     std::string value) {
  staged_[key] = std::move(value);
}

Status MvccStore::ValidateReadsAgainstRowsLocked(
    const MvccTransaction* txn) const {
  auto invalidated = [&](const std::string& key) {
    auto it = rows_.find(key);
    if (it == rows_.end()) return false;
    const Version& last = it->second.back();
    return last.created_seq > txn->begin_seq_ ||
           last.deleted_seq > txn->begin_seq_;
  };
  for (const auto& key : txn->read_keys_) {
    if (invalidated(key)) {
      return Status::Conflict("serializable read conflict on key: " + key);
    }
  }
  for (const auto& prefix : txn->read_prefixes_) {
    for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      if (invalidated(it->first)) {
        return Status::Conflict("serializable range conflict at key: " +
                                it->first);
      }
    }
  }
  return Status::OK();
}

Status MvccStore::ValidateForSequencing(MvccTransaction* txn,
                                        uint64_t observed_seq) {
  const bool check_reads =
      txn->mode_ == IsolationMode::kSerializable &&
      (!txn->read_keys_.empty() || !txn->read_prefixes_.empty());
  // The pipeline lock guards the write-set/intent state this validation
  // reads; acquiring it contends with barrier waiters and enqueuers.
  std::unique_lock<std::mutex> plk(commit_mu_, std::defer_lock);
  {
    common::ScopedWait lock_wait(wait_stats_,
                                 common::WaitClass::kLockIntent);
    plk.lock();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // First-committer-wins on the write set: if any written key has a
    // version created or deleted after our snapshot, a concurrent
    // transaction got there first.
    for (const auto& [key, value] : txn->writes_) {
      (void)value;
      auto it = rows_.find(key);
      if (it == rows_.end()) continue;
      for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
        if (v->created_seq > txn->begin_seq_ ||
            v->deleted_seq > txn->begin_seq_) {
          return Status::Conflict("write-write conflict on key: " + key);
        }
        // Versions are ordered; once we see one at/below the snapshot we
        // can stop.
        if (v->created_seq <= txn->begin_seq_) break;
      }
    }
    // The ring covers (recent_trimmed_to_, commit_seq_]; if the gate's
    // pre-validation is older than that, rescan the read set against the
    // installed store (rare: the store moved more than kRecentCommitCap
    // commits while this committer queued).
    if (check_reads && observed_seq < recent_trimmed_to_) {
      stat_revalidation_fallbacks_++;
      POLARIS_RETURN_IF_ERROR(ValidateReadsAgainstRowsLocked(txn));
      observed_seq = commit_seq_;
    }
  }
  // First-committer-wins against commits sequenced but not yet installed:
  // every pending sequence is newer than any live snapshot, so overlap is
  // a conflict outright. (A pending commit whose batch later fails makes
  // this a false positive — conservative, never unsound.)
  for (const auto& entry : pending_) {
    for (const auto& [key, value] : txn->writes_) {
      (void)value;
      if (entry->writes.count(key) != 0) {
        return Status::Conflict("write-write conflict on key: " + key);
      }
    }
  }
  if (check_reads) {
    std::unordered_set<std::string_view> read_keys(txn->read_keys_.begin(),
                                                   txn->read_keys_.end());
    auto touches = [&](const std::string& key) {
      if (read_keys.count(key) != 0) return true;
      for (const auto& prefix : txn->read_prefixes_) {
        if (key.compare(0, prefix.size(), prefix) == 0) return true;
      }
      return false;
    };
    // Installed after the pre-validation observed the store...
    for (auto it = recent_commits_.rbegin();
         it != recent_commits_.rend() && it->first > observed_seq; ++it) {
      for (const auto& key : it->second) {
        if (touches(key)) {
          return Status::Conflict("serializable read conflict on key: " + key);
        }
      }
    }
    // ...or sequenced and still queued for durability.
    for (const auto& entry : pending_) {
      for (const auto& [key, value] : entry->writes) {
        (void)value;
        if (touches(key)) {
          return Status::Conflict("serializable read conflict on key: " + key);
        }
      }
    }
  }
  return Status::OK();
}

void MvccStore::FlushRoundLocked(std::unique_lock<std::mutex>& lk) {
  flush_in_progress_ = true;
  std::vector<std::shared_ptr<CommitEntry>> batch;
  batch.swap(queue_);
  const CommitListener& listener = commit_listener_;
  lk.unlock();

  const auto wall_start = std::chrono::steady_clock::now();
  Status st = Status::OK();
  if (common::CrashPoints::Fire(common::crash::kCommitBatchFormed)) {
    // Crash before the durability point: nothing in this batch reached
    // the journal, so recovery must not observe any of it.
    st = Status::Internal(std::string("crash point fired: ") +
                          common::crash::kCommitBatchFormed);
  }
  bool durable = false;
  if (st.ok()) {
    if (listener) {
      // The batch's durability must not ride one member's statement
      // budget: the leader flushes under a neutral deadline, and a
      // cancelled member detaches at the barrier instead of cancelling
      // the shared append.
      common::ScopedWait io_wait(wait_stats_, common::WaitClass::kStoreIo);
      common::ScopedDeadline neutral{common::Deadline()};
      std::vector<CommitRecord> records;
      records.reserve(batch.size());
      for (const auto& entry : batch) {
        records.push_back({entry->seq, &entry->writes});
      }
      st = listener(records);
    }
    durable = st.ok();
  }
  bool installed = false;
  if (durable && common::CrashPoints::Fire(common::crash::kCommitBatchAppended)) {
    // The batch IS durable but the process dies before install: the
    // in-memory catalog is now behind the journal, so the pipeline fails
    // closed (reopen recovers the batch from the journal).
    st = Status::Internal(std::string("crash point fired: ") +
                          common::crash::kCommitBatchAppended);
  } else if (durable) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : batch) {
      for (const auto& [key, value] : entry->writes) {
        auto& chain = rows_[key];
        if (!chain.empty() && chain.back().deleted_seq == 0) {
          chain.back().deleted_seq = entry->seq;
        }
        if (value.has_value()) {
          Version v;
          v.value = *value;
          v.created_seq = entry->seq;
          chain.push_back(std::move(v));
        } else if (chain.empty()) {
          rows_.erase(key);  // delete of a never-existing key: no-op
        }
      }
      commit_seq_ = entry->seq;
    }
    installed = true;
    if (common::CrashPoints::Fire(common::crash::kCommitBatchInstalled)) {
      // Durable AND installed; only the acknowledgement is lost — the
      // classic lost-ack outcome, reported as an error to every waiter.
      st = Status::Internal(std::string("crash point fired: ") +
                            common::crash::kCommitBatchInstalled);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->Add("catalog.commit.batches");
    metrics_->Observe("catalog.commit.batch_records",
                      static_cast<int64_t>(batch.size()));
    metrics_->Observe(
        "catalog.commit.flush_us",
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    if (installed) {
      metrics_->Add("catalog.commit.committed", batch.size());
    }
  }

  lk.lock();
  if (durable && !installed) pipeline_poisoned_ = true;
  const int64_t done_at_us =
      wait_stats_ != nullptr ? common::WaitStats::NowMicros() : 0;
  for (const auto& entry : batch) {
    pending_.erase(std::remove(pending_.begin(), pending_.end(), entry),
                   pending_.end());
    if (installed) {
      std::vector<std::string> keys;
      keys.reserve(entry->writes.size());
      for (const auto& [key, value] : entry->writes) {
        (void)value;
        keys.push_back(key);
      }
      recent_commits_.emplace_back(entry->seq, std::move(keys));
    }
    entry->status = st;
    entry->done_at_us = done_at_us;
    entry->done = true;
  }
  while (recent_commits_.size() > kRecentCommitCap) {
    recent_trimmed_to_ = recent_commits_.front().first;
    recent_commits_.pop_front();
  }
  stat_batches_++;
  stat_batch_records_ += batch.size();
  stat_max_batch_ = std::max<uint64_t>(stat_max_batch_, batch.size());
  if (installed) {
    stat_commits_ += batch.size();
  } else {
    stat_flush_failures_++;
  }
  flush_in_progress_ = false;
  flush_cv_.notify_all();
}

Status MvccStore::Commit(MvccTransaction* txn, const CommitHook& hook) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  if (read_only_.load(std::memory_order_relaxed)) {
    // Replica: read-only commits finish without claiming a commit
    // sequence — the replicated journal stream owns the sequence space,
    // and a locally claimed sequence would collide with it. Anything
    // that stages a write is rejected; the hook still runs (CatalogDb
    // always passes one, and with nothing pending it stages nothing).
    txn->finished_ = true;
    if (!txn->writes_.empty()) {
      return Status::FailedPrecondition(
          "read-only replica: catalog writes are not allowed");
    }
    CommitContext ctx(this, txn, 0);
    if (hook) POLARIS_RETURN_IF_ERROR(hook(&ctx));
    if (!ctx.staged_.empty()) {
      return Status::FailedPrecondition(
          "read-only replica: catalog writes are not allowed");
    }
    return Status::OK();
  }
  // Benchmark baseline: one lock across the whole commit, IO included.
  std::unique_lock<std::mutex> serial_lk;
  if (serial_commit_.load(std::memory_order_relaxed)) {
    common::ScopedWait gate_wait(wait_stats_,
                                 common::WaitClass::kCommitGate);
    serial_lk = std::unique_lock<std::mutex>(serial_gate_);
  }
  const common::Deadline deadline = common::CurrentDeadline();
  if (deadline.bounded()) {
    // A commit whose budget is already spent must not enter the gate at
    // all: fail fast instead of occupying a sequencing slot it would only
    // detach from.
    Status early = deadline.Check("catalog.commit");
    if (!early.ok()) {
      txn->finished_ = true;
      return early;
    }
  }

  // --- Pre-validation (outside the gate) ----------------------------------
  // Serializable read sets can be arbitrarily wide (prefix scans), so the
  // O(matching rows) walk happens here against the installed store; the
  // gate then re-validates only what changed after `observed_seq`, using
  // the recent-commit ring and the pending queue.
  uint64_t observed_seq = 0;
  if (txn->mode_ == IsolationMode::kSerializable &&
      (!txn->read_keys_.empty() || !txn->read_prefixes_.empty())) {
    Status preval;
    {
      std::lock_guard<std::mutex> lock(mu_);
      observed_seq = commit_seq_;
      preval = ValidateReadsAgainstRowsLocked(txn);
    }
    if (!preval.ok()) {
      // Lock order is commit_mu_ -> mu_, so mu_ must drop before the
      // counter update takes commit_mu_.
      txn->finished_ = true;
      std::lock_guard<std::mutex> plk(commit_mu_);
      stat_conflicts_++;
      return preval;
    }
    stat_prevalidated_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Sequencing gate: priority-ordered admission ------------------------
  std::unique_lock<std::mutex> lk(commit_mu_, std::defer_lock);
  {
    common::ScopedWait gate_wait(wait_stats_,
                                 common::WaitClass::kCommitGate);
    lk.lock();
    const auto me = std::pair<int, uint64_t>(
        -static_cast<int>(txn->priority_), ++gate_ticket_);
    gate_waiters_.insert(me);
    while (sequencing_ || *gate_waiters_.begin() != me) {
      if (deadline.bounded()) {
        gate_cv_.wait_for(lk, std::chrono::milliseconds(1));
        if (!sequencing_ && *gate_waiters_.begin() == me) break;
        Status st = deadline.Check("catalog.commit.sequence");
        if (!st.ok()) {
          gate_waiters_.erase(me);
          gate_cv_.notify_all();
          txn->finished_ = true;
          return st;
        }
      } else {
        gate_cv_.wait(lk);
      }
    }
    gate_waiters_.erase(me);
  }
  if (pipeline_poisoned_) {
    gate_cv_.notify_all();
    txn->finished_ = true;
    return Status::Internal(
        "commit pipeline failed closed after a partial group commit; "
        "reopen the database to recover");
  }
  sequencing_ = true;
  lk.unlock();

  // --- Sequencing critical section (exclusive, no IO) ---------------------
  // Other committers may queue at the gate (by priority) while this runs;
  // the durability flush of earlier batches proceeds concurrently.
  Status st = ValidateForSequencing(txn, observed_seq);
  const uint64_t seq = sequenced_seq_ + 1;
  CommitContext ctx(this, txn, seq);
  if (st.ok() && hook) st = hook(&ctx);
  if (!st.ok()) {
    // Validation or hook failure: the sequence is not consumed.
    lk.lock();
    if (st.IsConflict()) stat_conflicts_++;
    sequencing_ = false;
    gate_cv_.notify_all();
    lk.unlock();
    txn->finished_ = true;
    return st;
  }

  // --- Sequence allocation + enqueue --------------------------------------
  lk.lock();
  // Merge hook-staged writes into the commit's effective write set only
  // now: the transaction's own write set stays clean if the durability
  // point is never reached.
  auto entry = std::make_shared<CommitEntry>();
  entry->seq = seq;
  entry->writes = txn->writes_;
  for (auto& [key, value] : ctx.staged_) {
    entry->writes[key] = std::move(value);
  }
  sequenced_seq_ = seq;
  queue_.push_back(entry);
  pending_.push_back(entry);
  if (txn->priority_ == CommitPriority::kHigh) stat_high_priority_++;
  sequencing_ = false;
  gate_cv_.notify_all();

  // --- Group-commit barrier -----------------------------------------------
  {
    // The whole barrier section is COMMIT_BARRIER time; the leader's
    // journal append inside FlushRoundLocked is a nested STORE_IO wait,
    // so barrier self-time excludes it (the classes partition).
    common::ScopedWait barrier_wait(wait_stats_,
                                    common::WaitClass::kCommitBarrier);
    while (!entry->done) {
      if (!flush_in_progress_) {
        FlushRoundLocked(lk);  // leader: flush everything queued, us included
        continue;
      }
      if (deadline.bounded()) {
        flush_cv_.wait_for(lk, std::chrono::milliseconds(1));
        if (entry->done) break;
        Status dst = deadline.Check("catalog.commit.flush-wait");
        if (!dst.ok()) {
          // Detach without stalling the batch: the leader still resolves
          // the entry, so the commit's outcome is in doubt (it may land).
          entry->detached = true;
          stat_waiters_detached_++;
          if (metrics_ != nullptr) {
            metrics_->Add("catalog.commit.waiters_detached");
          }
          txn->finished_ = true;
          return dst;
        }
      } else {
        flush_cv_.wait(lk);
      }
    }
    // Signal-vs-resource split: the entry was resolved at done_at_us; any
    // time past that is wake latency, not work the waiter was blocked on.
    if (wait_stats_ != nullptr && wait_stats_->enabled() &&
        entry->done_at_us != 0) {
      wait_stats_->RecordSignal(
          common::WaitClass::kCommitBarrier,
          common::WaitStats::NowMicros() - entry->done_at_us);
    }
  }
  // If the queue holds only entries whose waiters detached, drain them
  // now rather than leaving them for the next committer.
  if (!flush_in_progress_ && !queue_.empty()) {
    bool orphans_only = true;
    for (const auto& e : queue_) {
      if (!e->detached) {
        orphans_only = false;
        break;
      }
    }
    if (orphans_only) FlushRoundLocked(lk);
  }
  txn->finished_ = true;
  if (entry->status.ok()) txn->commit_seq_ = entry->seq;
  return entry->status;
}

Status MvccStore::ApplyReplicated(
    uint64_t commit_seq,
    const std::vector<std::pair<std::string, std::optional<std::string>>>&
        writes) {
  std::lock_guard<std::mutex> plk(commit_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  // Idempotence: a tail pass re-reading records below the watermark
  // (after a re-bootstrap, or a diff applied at a sequence the cursor
  // already passed) must be a no-op.
  if (commit_seq <= commit_seq_) return Status::OK();
  std::vector<std::string> keys;
  keys.reserve(writes.size());
  for (const auto& [key, value] : writes) {
    auto& chain = rows_[key];
    if (!chain.empty() && chain.back().deleted_seq == 0) {
      chain.back().deleted_seq = commit_seq;
    }
    if (value.has_value()) {
      Version v;
      v.value = *value;
      v.created_seq = commit_seq;
      chain.push_back(std::move(v));
    } else if (chain.empty()) {
      rows_.erase(key);  // delete of a never-existing key: no-op
    }
    keys.push_back(key);
  }
  // Version chains grew exactly as a local install would have grown
  // them, so snapshot readers pinned below `commit_seq` are unaffected.
  commit_seq_ = commit_seq;
  sequenced_seq_ = commit_seq;
  recent_commits_.emplace_back(commit_seq, std::move(keys));
  while (recent_commits_.size() > kRecentCommitCap) {
    recent_trimmed_to_ = recent_commits_.front().first;
    recent_commits_.pop_front();
  }
  return Status::OK();
}

void MvccStore::Abort(MvccTransaction* txn) {
  txn->writes_.clear();
  txn->finished_ = true;
}

uint64_t MvccStore::LatestCommitSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_seq_;
}

MvccStore::CommitPipelineStats MvccStore::PipelineStats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  CommitPipelineStats stats;
  stats.commits = stat_commits_;
  stats.conflicts = stat_conflicts_;
  stats.batches = stat_batches_;
  stats.batch_records = stat_batch_records_;
  stats.max_batch = stat_max_batch_;
  stats.flush_failures = stat_flush_failures_;
  stats.waiters_detached = stat_waiters_detached_;
  stats.high_priority = stat_high_priority_;
  stats.prevalidated = stat_prevalidated_.load(std::memory_order_relaxed);
  stats.revalidation_fallbacks = stat_revalidation_fallbacks_;
  stats.gate_waiters = gate_waiters_.size();
  stats.pending = pending_.size();
  return stats;
}

uint64_t MvccStore::Vacuum(uint64_t horizon_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t removed = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    auto& chain = it->second;
    size_t before = chain.size();
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const Version& v) {
                                 return v.deleted_seq != 0 &&
                                        v.deleted_seq <= horizon_seq;
                               }),
                chain.end());
    removed += before - chain.size();
    if (chain.empty()) {
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::pair<std::string, std::string>> MvccStore::ExportLatest(
    uint64_t* commit_seq_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (commit_seq_out != nullptr) *commit_seq_out = commit_seq_;
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, chain] : rows_) {
    if (!chain.empty() && chain.back().deleted_seq == 0) {
      out.emplace_back(key, chain.back().value);
    }
  }
  return out;
}

void MvccStore::ImportSnapshot(
    const std::vector<std::pair<std::string, std::string>>& rows,
    uint64_t commit_seq) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  for (const auto& [key, value] : rows) {
    Version v;
    v.value = value;
    v.created_seq = commit_seq;
    rows_[key].push_back(std::move(v));
  }
  commit_seq_ = commit_seq;
  // Reset the commit pipeline: the caller guarantees quiescence, so no
  // sequenced-but-uninstalled commit can exist.
  sequenced_seq_ = commit_seq;
  queue_.clear();
  pending_.clear();
  recent_commits_.clear();
  recent_trimmed_to_ = commit_seq;
  pipeline_poisoned_ = false;
}

uint64_t MvccStore::LiveKeyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [key, chain] : rows_) {
    (void)key;
    if (!chain.empty() && chain.back().deleted_seq == 0) ++n;
  }
  return n;
}

}  // namespace polaris::catalog
