#include "catalog/mvcc.h"

#include <algorithm>

namespace polaris::catalog {

using common::Result;
using common::Status;

std::string_view IsolationModeName(IsolationMode mode) {
  switch (mode) {
    case IsolationMode::kSnapshot:
      return "Snapshot";
    case IsolationMode::kReadCommittedSnapshot:
      return "ReadCommittedSnapshot";
    case IsolationMode::kSerializable:
      return "Serializable";
  }
  return "Unknown";
}

std::unique_ptr<MvccTransaction> MvccStore::Begin(IsolationMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn = std::unique_ptr<MvccTransaction>(new MvccTransaction());
  txn->id_ = next_txn_id_++;
  txn->begin_seq_ = commit_seq_;
  txn->mode_ = mode;
  return txn;
}

uint64_t MvccStore::ReadSnapshotLocked(const MvccTransaction* txn) const {
  if (txn->mode_ == IsolationMode::kReadCommittedSnapshot) {
    return commit_seq_;  // latest committed at each read
  }
  return txn->begin_seq_;
}

std::optional<std::string> MvccStore::GetAtLocked(const std::string& key,
                                                  uint64_t seq) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  // Versions are appended in commit order; find the newest visible one.
  for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
    if (v->created_seq <= seq) {
      if (v->deleted_seq == 0 || v->deleted_seq > seq) return v->value;
      return std::nullopt;  // newest visible version is a deleted one
    }
  }
  return std::nullopt;
}

Result<std::optional<std::string>> MvccStore::Get(MvccTransaction* txn,
                                                  const std::string& key) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  auto write = txn->writes_.find(key);
  if (write != txn->writes_.end()) {
    return write->second;  // own write (value or tombstone)
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (txn->mode_ == IsolationMode::kSerializable) {
    txn->read_keys_.push_back(key);
  }
  return GetAtLocked(key, ReadSnapshotLocked(txn));
}

Result<std::vector<std::pair<std::string, std::string>>> MvccStore::Scan(
    MvccTransaction* txn, const std::string& prefix) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  std::vector<std::pair<std::string, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (txn->mode_ == IsolationMode::kSerializable) {
      txn->read_prefixes_.push_back(prefix);
    }
    uint64_t seq = ReadSnapshotLocked(txn);
    for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      auto value = GetAtLocked(it->first, seq);
      if (value) out.emplace_back(it->first, std::move(*value));
    }
  }
  // Overlay own writes (and drop own deletes).
  for (auto it = txn->writes_.lower_bound(prefix); it != txn->writes_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    auto pos = std::lower_bound(
        out.begin(), out.end(), it->first,
        [](const auto& pair, const std::string& key) {
          return pair.first < key;
        });
    bool exists = pos != out.end() && pos->first == it->first;
    if (it->second.has_value()) {
      if (exists) {
        pos->second = *it->second;
      } else {
        out.insert(pos, {it->first, *it->second});
      }
    } else if (exists) {
      out.erase(pos);
    }
  }
  return out;
}

Status MvccStore::Put(MvccTransaction* txn, const std::string& key,
                      std::string value) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  txn->writes_[key] = std::move(value);
  return Status::OK();
}

Status MvccStore::Delete(MvccTransaction* txn, const std::string& key) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  txn->writes_[key] = std::nullopt;
  return Status::OK();
}

std::optional<std::string> MvccStore::CommitContext::ReadLatest(
    const std::string& key) const {
  // Called under commit_mu_; mu_ still guards rows_.
  std::lock_guard<std::mutex> lock(store_->mu_);
  // Own pending writes win (including hook-added ones).
  auto write = txn_->writes_.find(key);
  if (write != txn_->writes_.end()) return write->second;
  return store_->GetAtLocked(key, store_->commit_seq_);
}

std::vector<std::pair<std::string, std::string>>
MvccStore::CommitContext::ScanLatest(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(store_->mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = store_->rows_.lower_bound(prefix); it != store_->rows_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    auto value = store_->GetAtLocked(it->first, store_->commit_seq_);
    if (value) out.emplace_back(it->first, std::move(*value));
  }
  for (auto it = txn_->writes_.lower_bound(prefix); it != txn_->writes_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    auto pos = std::lower_bound(
        out.begin(), out.end(), it->first,
        [](const auto& pair, const std::string& key) {
          return pair.first < key;
        });
    bool exists = pos != out.end() && pos->first == it->first;
    if (it->second.has_value()) {
      if (exists) {
        pos->second = *it->second;
      } else {
        out.insert(pos, {it->first, *it->second});
      }
    } else if (exists) {
      out.erase(pos);
    }
  }
  return out;
}

void MvccStore::CommitContext::Write(const std::string& key,
                                     std::string value) {
  txn_->writes_[key] = std::move(value);
}

Status MvccStore::Commit(MvccTransaction* txn, const CommitHook& hook) {
  if (txn->finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  // The commit lock (§4.1.2 step 2): commits are totally ordered.
  std::lock_guard<std::mutex> commit_lock(commit_mu_);

  // --- Validation ---------------------------------------------------------
  {
    std::lock_guard<std::mutex> lock(mu_);
    // First-committer-wins on the write set: if any written key has a
    // version created or deleted after our snapshot, a concurrent
    // transaction got there first.
    for (const auto& [key, value] : txn->writes_) {
      (void)value;
      auto it = rows_.find(key);
      if (it == rows_.end()) continue;
      for (auto v = it->second.rbegin(); v != it->second.rend(); ++v) {
        if (v->created_seq > txn->begin_seq_ ||
            v->deleted_seq > txn->begin_seq_) {
          txn->finished_ = true;
          return Status::Conflict("write-write conflict on key: " + key);
        }
        // Versions are ordered; once we see one at/below the snapshot we
        // can stop.
        if (v->created_seq <= txn->begin_seq_) break;
      }
    }
    if (txn->mode_ == IsolationMode::kSerializable) {
      auto invalidated = [&](const std::string& key) {
        auto it = rows_.find(key);
        if (it == rows_.end()) return false;
        const Version& last = it->second.back();
        return last.created_seq > txn->begin_seq_ ||
               last.deleted_seq > txn->begin_seq_;
      };
      for (const auto& key : txn->read_keys_) {
        if (invalidated(key)) {
          txn->finished_ = true;
          return Status::Conflict("serializable read conflict on key: " + key);
        }
      }
      for (const auto& prefix : txn->read_prefixes_) {
        for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
          if (it->first.compare(0, prefix.size(), prefix) != 0) break;
          if (invalidated(it->first)) {
            txn->finished_ = true;
            return Status::Conflict("serializable range conflict at key: " +
                                    it->first);
          }
        }
      }
    }
  }

  // --- Commit hook (sequence assignment etc.) ------------------------------
  uint64_t commit_seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    commit_seq = commit_seq_ + 1;
  }
  if (hook) {
    CommitContext ctx(this, txn, commit_seq);
    Status st = hook(&ctx);
    if (!st.ok()) {
      txn->finished_ = true;
      return st;
    }
  }

  // --- Durability (write-ahead) --------------------------------------------
  // The journal append is the durability point: once the listener returns
  // OK the commit is recoverable; if it fails nothing was installed and
  // the commit sequence is not consumed, so the store state matches what
  // a post-crash recovery would reconstruct.
  if (commit_listener_) {
    Status st = commit_listener_(commit_seq, txn->writes_);
    if (!st.ok()) {
      txn->finished_ = true;
      return st;
    }
  }

  // --- Install -------------------------------------------------------------
  {
    std::lock_guard<std::mutex> lock(mu_);
    commit_seq_ = commit_seq;
    for (auto& [key, value] : txn->writes_) {
      auto& chain = rows_[key];
      if (!chain.empty() && chain.back().deleted_seq == 0) {
        chain.back().deleted_seq = commit_seq;
      }
      if (value.has_value()) {
        Version v;
        v.value = std::move(*value);
        v.created_seq = commit_seq;
        chain.push_back(std::move(v));
      } else if (chain.empty()) {
        rows_.erase(key);  // delete of a never-existing key: no-op
      }
    }
  }
  txn->finished_ = true;
  return Status::OK();
}

void MvccStore::Abort(MvccTransaction* txn) {
  txn->writes_.clear();
  txn->finished_ = true;
}

uint64_t MvccStore::LatestCommitSeq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_seq_;
}

uint64_t MvccStore::Vacuum(uint64_t horizon_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t removed = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    auto& chain = it->second;
    size_t before = chain.size();
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const Version& v) {
                                 return v.deleted_seq != 0 &&
                                        v.deleted_seq <= horizon_seq;
                               }),
                chain.end());
    removed += before - chain.size();
    if (chain.empty()) {
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::pair<std::string, std::string>> MvccStore::ExportLatest(
    uint64_t* commit_seq_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (commit_seq_out != nullptr) *commit_seq_out = commit_seq_;
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, chain] : rows_) {
    if (!chain.empty() && chain.back().deleted_seq == 0) {
      out.emplace_back(key, chain.back().value);
    }
  }
  return out;
}

void MvccStore::ImportSnapshot(
    const std::vector<std::pair<std::string, std::string>>& rows,
    uint64_t commit_seq) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  for (const auto& [key, value] : rows) {
    Version v;
    v.value = value;
    v.created_seq = commit_seq;
    rows_[key].push_back(std::move(v));
  }
  commit_seq_ = commit_seq;
}

uint64_t MvccStore::LiveKeyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [key, chain] : rows_) {
    (void)key;
    if (!chain.empty() && chain.back().deleted_seq == 0) ++n;
  }
  return n;
}

}  // namespace polaris::catalog
