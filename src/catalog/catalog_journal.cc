#include "catalog/catalog_journal.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>

#include "common/bytes.h"
#include "common/crashpoint.h"
#include "common/logging.h"

namespace polaris::catalog {

using common::Result;
using common::Status;

namespace {

constexpr uint32_t kRecordMagic = 0x314a4c50;      // "PLJ1"
constexpr uint32_t kCheckpointMagic = 0x314b4350;  // "PCK1"
// magic + crc + body_len
constexpr size_t kFrameHeaderSize = 12;

std::string Pad20(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(v));
  return buf;
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`.
uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

/// Extracts the zero-padded sequence from a segment/checkpoint blob name
/// ("<prefix>/<20 digits>.<ext>"). Returns nullopt for foreign blobs.
std::optional<uint64_t> SeqFromPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find('.');
  if (dot == std::string::npos) return std::nullopt;
  name.resize(dot);
  if (name.empty() || name.size() > 20) return std::nullopt;
  uint64_t value = 0;
  for (char c : name) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

struct ParsedRecord {
  uint64_t commit_seq = 0;
  std::vector<std::pair<std::string, std::optional<std::string>>> writes;
};

/// Parses one framed record at the reader's cursor. Returns nullopt (and
/// leaves `torn` explanation to the caller) on any malformation — a torn
/// tail, a bad checksum, garbage.
std::optional<ParsedRecord> ParseRecord(common::ByteReader* in) {
  if (in->remaining() < kFrameHeaderSize) return std::nullopt;
  uint32_t magic, crc, body_len;
  if (!in->GetU32(&magic).ok() || magic != kRecordMagic) return std::nullopt;
  if (!in->GetU32(&crc).ok()) return std::nullopt;
  if (!in->GetU32(&body_len).ok()) return std::nullopt;
  if (in->remaining() < body_len) return std::nullopt;
  std::string body(body_len, '\0');
  if (!in->GetRaw(body.data(), body_len).ok()) return std::nullopt;
  if (Crc32(body) != crc) return std::nullopt;
  common::ByteReader body_in(body);
  ParsedRecord record;
  uint64_t count;
  if (!body_in.GetU64(&record.commit_seq).ok()) return std::nullopt;
  if (!body_in.GetVarint(&count).ok()) return std::nullopt;
  record.writes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    uint8_t has_value;
    if (!body_in.GetString(&key).ok()) return std::nullopt;
    if (!body_in.GetU8(&has_value).ok()) return std::nullopt;
    std::optional<std::string> value;
    if (has_value != 0) {
      std::string v;
      if (!body_in.GetString(&v).ok()) return std::nullopt;
      value = std::move(v);
    }
    record.writes.emplace_back(std::move(key), std::move(value));
  }
  if (!body_in.AtEnd()) return std::nullopt;
  return record;
}

}  // namespace

CatalogJournal::CatalogJournal(storage::ObjectStore* store,
                               CatalogJournalOptions options,
                               obs::MetricsRegistry* metrics)
    : store_(store), options_(std::move(options)), metrics_(metrics) {
  if (options_.records_per_segment == 0) options_.records_per_segment = 1;
}

std::string CatalogJournal::SegmentPath(uint64_t first_seq) const {
  return JournalPrefix() + Pad20(first_seq) + ".seg";
}

std::string CatalogJournal::CheckpointPath(uint64_t seq) const {
  return CheckpointPrefix() + Pad20(seq) + ".ckpt";
}

std::string CatalogJournal::EncodeRecord(
    uint64_t commit_seq,
    const std::map<std::string, std::optional<std::string>>& writes) {
  common::ByteWriter body;
  body.PutU64(commit_seq);
  body.PutVarint(writes.size());
  for (const auto& [key, value] : writes) {
    body.PutString(key);
    body.PutU8(value.has_value() ? 1 : 0);
    if (value.has_value()) body.PutString(*value);
  }
  common::ByteWriter frame;
  frame.PutU32(kRecordMagic);
  frame.PutU32(Crc32(body.data()));
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data().data(), body.size());
  return frame.Release();
}

Result<CatalogJournal::RecoveredState> CatalogJournal::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  RecoveredState state;

  // --- Latest readable checkpoint -----------------------------------------
  std::map<std::string, std::string> live;
  POLARIS_ASSIGN_OR_RETURN(auto checkpoints,
                           store_->List(CheckpointPrefix()));
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    auto blob = store_->Get(it->path);
    if (!blob.ok()) continue;
    common::ByteReader in(*blob);
    uint32_t magic;
    uint64_t seq, count;
    if (!in.GetU32(&magic).ok() || magic != kCheckpointMagic) continue;
    if (!in.GetU64(&seq).ok() || !in.GetVarint(&count).ok()) continue;
    std::map<std::string, std::string> rows;
    bool valid = true;
    for (uint64_t i = 0; i < count; ++i) {
      std::string key, value;
      if (!in.GetString(&key).ok() || !in.GetString(&value).ok()) {
        valid = false;
        break;
      }
      rows.emplace(std::move(key), std::move(value));
    }
    if (!valid || !in.AtEnd()) continue;
    live = std::move(rows);
    state.checkpoint_seq = seq;
    break;
  }

  // --- Journal tail replay -------------------------------------------------
  uint64_t last_seq = state.checkpoint_seq;
  POLARIS_ASSIGN_OR_RETURN(auto segments, store_->List(JournalPrefix()));
  std::vector<std::pair<uint64_t, std::string>> ordered;
  ordered.reserve(segments.size());
  for (const auto& info : segments) {
    auto first_seq = SeqFromPath(info.path);
    if (first_seq.has_value()) ordered.emplace_back(*first_seq, info.path);
  }
  std::sort(ordered.begin(), ordered.end());
  for (size_t i = 0; i < ordered.size(); ++i) {
    // O(tail): a segment is entirely covered by the checkpoint when the
    // next segment starts at or before checkpoint_seq + 1 — skip the read.
    if (i + 1 < ordered.size() &&
        ordered[i + 1].first <= state.checkpoint_seq + 1) {
      continue;
    }
    POLARIS_ASSIGN_OR_RETURN(std::string data,
                             store_->Get(ordered[i].second));
    common::ByteReader in(data);
    state.segments_scanned++;
    while (!in.AtEnd()) {
      auto record = ParseRecord(&in);
      if (!record.has_value()) {
        // Torn or corrupt record: a crash mid-append. Everything before
        // it is intact; the record itself never reached its durability
        // point, so dropping it *is* the correct recovery outcome.
        state.torn_tail = true;
        POLARIS_LOG(kWarn, "journal")
            << "dropping torn/corrupt record tail in " << ordered[i].second
            << " after seq " << last_seq;
        break;
      }
      if (record->commit_seq <= last_seq) continue;  // covered already
      for (auto& [key, value] : record->writes) {
        if (value.has_value()) {
          live[key] = std::move(*value);
        } else {
          live.erase(key);
        }
      }
      last_seq = record->commit_seq;
      state.records_replayed++;
    }
  }
  state.commit_seq = last_seq;

  // Dead segments hold only torn garbage (no record survived); delete
  // them so the post-recovery appender can never collide with their
  // names when it rolls a fresh segment.
  for (const auto& [first_seq, path] : ordered) {
    if (first_seq > state.commit_seq) {
      (void)store_->Delete(path);
      POLARIS_LOG(kWarn, "journal") << "deleted dead journal segment " << path;
    }
  }

  state.rows.reserve(live.size());
  for (auto& [key, value] : live) state.rows.emplace_back(key, value);

  // --- Prime the appender --------------------------------------------------
  active_segment_.clear();
  active_ids_.clear();
  active_generation_ = 0;
  active_records_ = 0;
  poisoned_ = false;
  last_appended_seq_ = state.commit_seq;
  last_checkpoint_seq_ = state.checkpoint_seq;
  records_since_checkpoint_ = state.commit_seq - state.checkpoint_seq;
  return state;
}

Status CatalogJournal::AppendBatch(const std::vector<CommitRecord>& records) {
  if (records.empty()) return Status::OK();
  // Wall latency of the durability point (staging + ETag commit), the SLO
  // the health watchdog tracks; timed on the real clock because the
  // engine's sim clock only advances on injected waits.
  const auto wall_start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::Internal(
        "catalog journal failed closed after an append error; "
        "reopen the database to recover");
  }
  POLARIS_CRASH_POINT(common::crash::kJournalAppendBefore);
  if (active_segment_.empty() ||
      active_records_ >= options_.records_per_segment) {
    active_segment_ = SegmentPath(records.front().commit_seq);
    active_ids_.clear();
    active_generation_ = 0;
    active_records_ = 0;
    segments_started_++;
    if (metrics_ != nullptr) metrics_->Add("catalog.journal.segments");
  }

  // Stage every record, then commit the block list once: the whole batch
  // reaches its durability point in a single object-store write.
  //
  // A torn append durably commits only a prefix of the last record — the
  // checksum/length framing must reject it on replay while everything
  // before it in the batch survives.
  bool torn = common::CrashPoints::Fire(common::crash::kJournalAppendTorn);
  std::vector<std::string> ids = active_ids_;
  uint64_t batch_bytes = 0;
  Status st = Status::OK();
  for (size_t i = 0; i < records.size() && st.ok(); ++i) {
    std::string record =
        EncodeRecord(records[i].commit_seq, *records[i].writes);
    bool maim = torn && i + 1 == records.size();
    std::string block_id = "r" + Pad20(records[i].commit_seq);
    st = store_->StageBlock(
        active_segment_, block_id,
        maim ? record.substr(0, record.size() / 2) : record);
    if (st.ok()) {
      ids.push_back(block_id);
      batch_bytes += record.size();
    }
  }
  if (st.ok()) {
    // ETag-guarded: succeeds only when nobody else extended (or created)
    // this segment since our last append — single-writer enforcement.
    st = store_->CommitBlockListIf(active_segment_, ids, active_generation_);
    if (st.ok()) {
      active_ids_ = std::move(ids);
      active_generation_++;
      active_records_ += records.size();
    }
  }
  if (!st.ok()) {
    // The blob tail state is unknown (did the commit land?); refuse all
    // further appends so the in-memory catalog can't silently run ahead
    // of the journal. Recovery re-derives the truth from the blobs.
    poisoned_ = true;
    return st;
  }
  last_appended_seq_ = records.back().commit_seq;
  records_appended_ += records.size();
  bytes_appended_ += batch_bytes;
  records_since_checkpoint_ += records.size();
  if (metrics_ != nullptr) {
    metrics_->Add("catalog.journal.appends");
    metrics_->Add("catalog.journal.records", records.size());
    metrics_->Add("catalog.journal.bytes", batch_bytes);
    metrics_->Observe(
        "catalog.journal.append_us",
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    metrics_->Observe("catalog.journal.batch_records",
                      static_cast<common::Micros>(records.size()));
  }
  if (torn) {
    poisoned_ = true;
    return Status::Internal(std::string("crash point fired: ") +
                            common::crash::kJournalAppendTorn);
  }
  if (common::CrashPoints::Fire(common::crash::kJournalAppendAfterCommit)) {
    // The batch IS durable; the process dies before acknowledging. The
    // transactions will be visible after reopen even though the clients
    // saw an error — the classic lost-ack outcome.
    poisoned_ = true;
    return Status::Internal(std::string("crash point fired: ") +
                            common::crash::kJournalAppendAfterCommit);
  }
  return Status::OK();
}

Status CatalogJournal::Append(
    uint64_t commit_seq,
    const std::map<std::string, std::optional<std::string>>& writes) {
  return AppendBatch({CommitRecord{commit_seq, &writes}});
}

Status CatalogJournal::WriteCheckpoint(
    uint64_t commit_seq,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  common::ByteWriter out;
  out.PutU32(kCheckpointMagic);
  out.PutU64(commit_seq);
  out.PutVarint(rows.size());
  for (const auto& [key, value] : rows) {
    out.PutString(key);
    out.PutString(value);
  }
  Status st = store_->Put(CheckpointPath(commit_seq), out.Release());
  // A checkpoint at a given sequence always has the same content, so a
  // concurrent/previous writer having won is success.
  if (!st.ok() && !st.IsAlreadyExists()) return st;
  if (commit_seq >= last_checkpoint_seq_) {
    last_checkpoint_seq_ = commit_seq;
    records_since_checkpoint_ = last_appended_seq_ > commit_seq
                                    ? last_appended_seq_ - commit_seq
                                    : 0;
  }
  checkpoints_written_++;
  if (metrics_ != nullptr) metrics_->Add("catalog.journal.checkpoints");
  POLARIS_LOG(kInfo, "journal")
      << "catalog checkpoint at seq " << commit_seq << " (" << rows.size()
      << " rows)";
  return Status::OK();
}

bool CatalogJournal::ShouldCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.checkpoint_every_records > 0 &&
         records_since_checkpoint_ >= options_.checkpoint_every_records;
}

Result<uint64_t> CatalogJournal::ReclaimSupersededSegments() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t deleted = 0;

  POLARIS_ASSIGN_OR_RETURN(auto checkpoints,
                           store_->List(CheckpointPrefix()));
  uint64_t latest_ckpt = 0;
  for (const auto& info : checkpoints) {
    auto seq = SeqFromPath(info.path);
    if (seq.has_value()) latest_ckpt = std::max(latest_ckpt, *seq);
  }
  if (latest_ckpt == 0) return deleted;  // nothing is superseded yet

  for (const auto& info : checkpoints) {
    auto seq = SeqFromPath(info.path);
    if (seq.has_value() && *seq < latest_ckpt) {
      POLARIS_RETURN_IF_ERROR(store_->Delete(info.path));
      deleted++;
    }
  }

  POLARIS_ASSIGN_OR_RETURN(auto segments, store_->List(JournalPrefix()));
  std::vector<std::pair<uint64_t, std::string>> ordered;
  for (const auto& info : segments) {
    auto first_seq = SeqFromPath(info.path);
    if (first_seq.has_value()) ordered.emplace_back(*first_seq, info.path);
  }
  std::sort(ordered.begin(), ordered.end());
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    // Every record in segment i is below segment i+1's first sequence,
    // so the checkpoint fully covers it iff that bound is <= ckpt+1.
    if (ordered[i + 1].first <= latest_ckpt + 1 &&
        ordered[i].second != active_segment_) {
      POLARIS_RETURN_IF_ERROR(store_->Delete(ordered[i].second));
      deleted++;
    }
  }
  if (deleted > 0 && metrics_ != nullptr) {
    metrics_->Add("catalog.journal.blobs_reclaimed", deleted);
  }
  return deleted;
}

uint64_t CatalogJournal::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_appended_;
}

uint64_t CatalogJournal::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

uint64_t CatalogJournal::segments_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_started_;
}

uint64_t CatalogJournal::checkpoints_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_written_;
}

uint64_t CatalogJournal::last_checkpoint_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_checkpoint_seq_;
}

uint64_t CatalogJournal::records_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_since_checkpoint_;
}

}  // namespace polaris::catalog
