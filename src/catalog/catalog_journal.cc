#include "catalog/catalog_journal.h"

#include <algorithm>
#include <chrono>

#include "catalog/journal_format.h"
#include "catalog/journal_replayer.h"
#include "common/bytes.h"
#include "common/crashpoint.h"
#include "common/logging.h"

namespace polaris::catalog {

using common::Result;
using common::Status;

namespace jf = journal_format;

Result<std::vector<JournalSegmentInfo>> ListJournalSegmentsSince(
    storage::ObjectStore* store, const CatalogJournalOptions& options,
    uint64_t since_seq) {
  POLARIS_ASSIGN_OR_RETURN(auto blobs,
                           store->List(options.prefix + "journal/"));
  std::vector<JournalSegmentInfo> out;
  out.reserve(blobs.size());
  for (const auto& info : blobs) {
    auto first_seq = jf::SeqFromPath(info.path);
    if (!first_seq.has_value()) continue;
    out.push_back(JournalSegmentInfo{*first_seq, info.path, info.size});
  }
  // List is lexicographic and names are zero-padded, so this sort is a
  // no-op in practice; it re-asserts the numeric ordering contract after
  // the foreign-blob filter regardless of the store's behavior.
  std::sort(out.begin(), out.end(),
            [](const JournalSegmentInfo& a, const JournalSegmentInfo& b) {
              return a.first_seq < b.first_seq;
            });
  // Drop segments fully below since_seq, keeping the straddler: the last
  // segment starting below since_seq may still contain records at or
  // past it (a segment's records run up to the next segment's first_seq).
  size_t start = out.size();
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].first_seq >= since_seq) {
      start = i;
      break;
    }
  }
  if (start > 0) --start;
  out.erase(out.begin(), out.begin() + static_cast<ptrdiff_t>(start));
  return out;
}

CatalogJournal::CatalogJournal(storage::ObjectStore* store,
                               CatalogJournalOptions options,
                               obs::MetricsRegistry* metrics)
    : store_(store), options_(std::move(options)), metrics_(metrics) {
  if (options_.records_per_segment == 0) options_.records_per_segment = 1;
}

std::string CatalogJournal::SegmentPath(uint64_t first_seq) const {
  return JournalPrefix() + jf::Pad20(first_seq) + ".seg";
}

std::string CatalogJournal::CheckpointPath(uint64_t seq) const {
  return CheckpointPrefix() + jf::Pad20(seq) + ".ckpt";
}

Result<std::vector<JournalSegmentInfo>> CatalogJournal::ListSegmentsSince(
    uint64_t since_seq) const {
  return ListJournalSegmentsSince(store_, options_, since_seq);
}

Result<CatalogJournal::RecoveredState> CatalogJournal::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  JournalReplayer replayer(store_, options_);
  POLARIS_ASSIGN_OR_RETURN(auto boot, replayer.Bootstrap());
  RecoveredState state = std::move(boot.state);

  // Dead segments hold only torn garbage (no record survived); delete
  // them so the post-recovery appender can never collide with their
  // names when it rolls a fresh segment.
  POLARIS_ASSIGN_OR_RETURN(auto segments, store_->List(JournalPrefix()));
  for (const auto& info : segments) {
    auto first_seq = jf::SeqFromPath(info.path);
    if (first_seq.has_value() && *first_seq > state.commit_seq) {
      (void)store_->Delete(info.path);
      POLARIS_LOG(kWarn, "journal")
          << "deleted dead journal segment " << info.path;
    }
  }

  // --- Prime the appender --------------------------------------------------
  active_segment_.clear();
  active_ids_.clear();
  active_generation_ = 0;
  active_records_ = 0;
  poisoned_ = false;
  last_appended_seq_ = state.commit_seq;
  last_checkpoint_seq_ = state.checkpoint_seq;
  records_since_checkpoint_ = state.commit_seq - state.checkpoint_seq;
  return state;
}

Status CatalogJournal::PrimeAfterPromotion(uint64_t commit_seq) {
  std::lock_guard<std::mutex> lock(mu_);

  POLARIS_ASSIGN_OR_RETURN(auto checkpoints, store_->List(CheckpointPrefix()));
  uint64_t latest_ckpt = 0;
  for (const auto& info : checkpoints) {
    auto seq = jf::SeqFromPath(info.path);
    if (seq.has_value() && *seq <= commit_seq) {
      latest_ckpt = std::max(latest_ckpt, *seq);
    }
  }

  // Same invariant as Recover: a segment starting past the watermark can
  // hold only torn garbage (any parseable record in it would have been
  // applied by the promotion's tail drain), so delete it before the fresh
  // appender can collide with its name.
  POLARIS_ASSIGN_OR_RETURN(auto segments, store_->List(JournalPrefix()));
  for (const auto& info : segments) {
    auto first_seq = jf::SeqFromPath(info.path);
    if (first_seq.has_value() && *first_seq > commit_seq) {
      (void)store_->Delete(info.path);
      POLARIS_LOG(kWarn, "journal")
          << "deleted dead journal segment " << info.path;
    }
  }

  active_segment_.clear();
  active_ids_.clear();
  active_generation_ = 0;
  active_records_ = 0;
  poisoned_ = false;
  fenced_ = false;
  last_appended_seq_ = commit_seq;
  last_checkpoint_seq_ = latest_ckpt;
  records_since_checkpoint_ = commit_seq - latest_ckpt;
  return Status::OK();
}

void CatalogJournal::set_epoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = epoch;
}

uint64_t CatalogJournal::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void CatalogJournal::set_fence_guard(std::function<Status()> guard) {
  std::lock_guard<std::mutex> lock(mu_);
  fence_guard_ = std::move(guard);
}

void CatalogJournal::set_fence_listener(
    std::function<void(const Status&)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  fence_listener_ = std::move(listener);
}

void CatalogJournal::Fence() {
  std::lock_guard<std::mutex> lock(mu_);
  fenced_ = true;
}

bool CatalogJournal::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

Status CatalogJournal::AppendBatch(const std::vector<CommitRecord>& records) {
  if (records.empty()) return Status::OK();
  // Wall latency of the durability point (staging + ETag commit), the SLO
  // the health watchdog tracks; timed on the real clock because the
  // engine's sim clock only advances on injected waits.
  const auto wall_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (fenced_) {
    return Status::FailedPrecondition(
        "fenced: a newer epoch owns the catalog journal; "
        "this primary is read-only");
  }
  if (poisoned_) {
    return Status::Internal(
        "catalog journal failed closed after an append error; "
        "reopen the database to recover");
  }
  if (fence_guard_ != nullptr) {
    // Refused, not poisoned: nothing was staged, the journal is intact.
    POLARIS_RETURN_IF_ERROR(fence_guard_());
  }
  POLARIS_CRASH_POINT(common::crash::kJournalAppendBefore);
  if (active_segment_.empty() ||
      active_records_ >= options_.records_per_segment) {
    active_segment_ = SegmentPath(records.front().commit_seq);
    active_ids_.clear();
    active_generation_ = 0;
    active_records_ = 0;
    segments_started_++;
    if (metrics_ != nullptr) metrics_->Add("catalog.journal.segments");
  }

  // Stage every record, then commit the block list once: the whole batch
  // reaches its durability point in a single object-store write.
  //
  // A torn append durably commits only a prefix of the last record — the
  // checksum/length framing must reject it on replay while everything
  // before it in the batch survives.
  bool torn = common::CrashPoints::Fire(common::crash::kJournalAppendTorn);
  std::vector<std::string> ids = active_ids_;
  uint64_t batch_bytes = 0;
  Status st = Status::OK();
  if (epoch_ != 0) {
    // Epoch stamp opens the batch: a frame-level audit of the journal can
    // attribute every record to the epoch that wrote it.
    std::string marker = jf::EncodeEpochMarker(epoch_, /*seal=*/false);
    std::string marker_id = "e" + jf::Pad20(records.front().commit_seq);
    st = store_->StageBlock(active_segment_, marker_id, marker);
    if (st.ok()) {
      ids.push_back(marker_id);
      batch_bytes += marker.size();
    }
  }
  for (size_t i = 0; i < records.size() && st.ok(); ++i) {
    std::string record =
        jf::EncodeRecord(records[i].commit_seq, *records[i].writes);
    bool maim = torn && i + 1 == records.size();
    std::string block_id = "r" + jf::Pad20(records[i].commit_seq);
    st = store_->StageBlock(
        active_segment_, block_id,
        maim ? record.substr(0, record.size() / 2) : record);
    if (st.ok()) {
      ids.push_back(block_id);
      batch_bytes += record.size();
    }
  }
  if (st.ok()) {
    // ETag-guarded: succeeds only when nobody else extended (or created)
    // this segment since our last append — single-writer enforcement.
    st = store_->CommitBlockListIf(active_segment_, ids, active_generation_);
    if (st.ok()) {
      active_ids_ = std::move(ids);
      active_generation_++;
      active_records_ += records.size();
    }
  }
  if (!st.ok()) {
    // The blob tail state is unknown (did the commit land?); refuse all
    // further appends so the in-memory catalog can't silently run ahead
    // of the journal. Recovery re-derives the truth from the blobs.
    poisoned_ = true;
    std::function<void(const common::Status&)> notify;
    if (st.IsFailedPrecondition()) {
      // A lost CAS means another writer sealed or recreated the active
      // segment — a newer epoch took over. Self-fence: this is terminal,
      // not a transient poison, and the waiters must see it as such.
      fenced_ = true;
      st = Status::FailedPrecondition(
          "fenced: journal segment " + active_segment_ +
          " was sealed or superseded by a newer epoch (" + st.message() + ")");
      notify = fence_listener_;
    }
    lock.unlock();
    // The listener runs without mu_ so it can safely call back into the
    // engine (events, metrics, read-only flips) or this journal.
    if (notify != nullptr) notify(st);
    return st;
  }
  last_appended_seq_ = records.back().commit_seq;
  records_appended_ += records.size();
  bytes_appended_ += batch_bytes;
  records_since_checkpoint_ += records.size();
  if (metrics_ != nullptr) {
    metrics_->Add("catalog.journal.appends");
    metrics_->Add("catalog.journal.records", records.size());
    metrics_->Add("catalog.journal.bytes", batch_bytes);
    metrics_->Observe(
        "catalog.journal.append_us",
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    metrics_->Observe("catalog.journal.batch_records",
                      static_cast<common::Micros>(records.size()));
  }
  if (torn) {
    poisoned_ = true;
    return Status::Internal(std::string("crash point fired: ") +
                            common::crash::kJournalAppendTorn);
  }
  if (common::CrashPoints::Fire(common::crash::kJournalAppendAfterCommit)) {
    // The batch IS durable; the process dies before acknowledging. The
    // transactions will be visible after reopen even though the clients
    // saw an error — the classic lost-ack outcome.
    poisoned_ = true;
    return Status::Internal(std::string("crash point fired: ") +
                            common::crash::kJournalAppendAfterCommit);
  }
  return Status::OK();
}

Status CatalogJournal::Append(
    uint64_t commit_seq,
    const std::map<std::string, std::optional<std::string>>& writes) {
  return AppendBatch({CommitRecord{commit_seq, &writes}});
}

Status CatalogJournal::WriteCheckpoint(
    uint64_t commit_seq,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  Status st = store_->Put(CheckpointPath(commit_seq),
                          jf::EncodeCheckpoint(commit_seq, rows));
  // A checkpoint at a given sequence always has the same content, so a
  // concurrent/previous writer having won is success.
  if (!st.ok() && !st.IsAlreadyExists()) return st;
  if (commit_seq >= last_checkpoint_seq_) {
    last_checkpoint_seq_ = commit_seq;
    records_since_checkpoint_ = last_appended_seq_ > commit_seq
                                    ? last_appended_seq_ - commit_seq
                                    : 0;
  }
  checkpoints_written_++;
  if (metrics_ != nullptr) metrics_->Add("catalog.journal.checkpoints");
  POLARIS_LOG(kInfo, "journal")
      << "catalog checkpoint at seq " << commit_seq << " (" << rows.size()
      << " rows)";
  return Status::OK();
}

bool CatalogJournal::ShouldCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.checkpoint_every_records > 0 &&
         records_since_checkpoint_ >= options_.checkpoint_every_records;
}

Result<uint64_t> CatalogJournal::ReclaimSupersededSegments() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t deleted = 0;

  POLARIS_ASSIGN_OR_RETURN(auto checkpoints,
                           store_->List(CheckpointPrefix()));
  uint64_t latest_ckpt = 0;
  for (const auto& info : checkpoints) {
    auto seq = jf::SeqFromPath(info.path);
    if (seq.has_value()) latest_ckpt = std::max(latest_ckpt, *seq);
  }
  if (latest_ckpt == 0) return deleted;  // nothing is superseded yet

  for (const auto& info : checkpoints) {
    auto seq = jf::SeqFromPath(info.path);
    if (seq.has_value() && *seq < latest_ckpt) {
      POLARIS_RETURN_IF_ERROR(store_->Delete(info.path));
      deleted++;
    }
  }

  POLARIS_ASSIGN_OR_RETURN(auto segments, store_->List(JournalPrefix()));
  std::vector<std::pair<uint64_t, std::string>> ordered;
  for (const auto& info : segments) {
    auto first_seq = jf::SeqFromPath(info.path);
    if (first_seq.has_value()) ordered.emplace_back(*first_seq, info.path);
  }
  std::sort(ordered.begin(), ordered.end());
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    // Retention floor for replica tailers: the newest
    // reclaim_retain_segments segments survive even when superseded, so
    // an attached tailer whose cursor trails by fewer segments than the
    // floor never observes a 404 mid-tail.
    if (ordered.size() - i <= options_.reclaim_retain_segments) break;
    // Every record in segment i is below segment i+1's first sequence,
    // so the checkpoint fully covers it iff that bound is <= ckpt+1.
    if (ordered[i + 1].first <= latest_ckpt + 1 &&
        ordered[i].second != active_segment_) {
      POLARIS_RETURN_IF_ERROR(store_->Delete(ordered[i].second));
      deleted++;
    }
  }
  if (deleted > 0 && metrics_ != nullptr) {
    metrics_->Add("catalog.journal.blobs_reclaimed", deleted);
  }
  return deleted;
}

uint64_t CatalogJournal::records_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_appended_;
}

uint64_t CatalogJournal::bytes_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_appended_;
}

uint64_t CatalogJournal::segments_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_started_;
}

uint64_t CatalogJournal::checkpoints_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_written_;
}

uint64_t CatalogJournal::last_checkpoint_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_checkpoint_seq_;
}

uint64_t CatalogJournal::records_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_since_checkpoint_;
}

}  // namespace polaris::catalog
