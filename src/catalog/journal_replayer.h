#ifndef POLARIS_CATALOG_JOURNAL_REPLAYER_H_
#define POLARIS_CATALOG_JOURNAL_REPLAYER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog_journal.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/object_store.h"

namespace polaris::catalog {

/// Resumable position inside the journal: the segment holding the next
/// byte to read, the byte offset of the first unparsed frame within it,
/// and the highest commit sequence applied so far. Segment contents are
/// prefix-stable (AppendBatch always commits `old blocks + new blocks`),
/// so a byte offset taken after a clean parse stays valid as the primary
/// extends the same segment — the tailer re-reads from there and sees
/// only new frames. A torn frame is the one exception: its bytes never
/// change (the primary poisons and rolls a fresh segment after a torn
/// append), so the cursor deliberately holds *before* it and the tailer
/// skips the dead remainder once a later segment appears.
struct ReplayCursor {
  /// First-record sequence of the segment the cursor points into (its
  /// blob name); 0 = no segment entered yet.
  uint64_t segment_first_seq = 0;
  /// Offset of the first byte not yet consumed by a successful parse.
  uint64_t byte_offset = 0;
  /// Highest commit sequence applied; records at or below it are skipped.
  uint64_t applied_seq = 0;
};

/// Shared checkpoint+journal replay engine. CatalogJournal::Recover uses
/// it for the one-shot crash-recovery scan; the replica tailer uses
/// Bootstrap for its initial snapshot and then TailOnce for incremental
/// catch-up from the cursor Bootstrap returned. Purely a reader: never
/// writes, never deletes, safe to run against a store another process is
/// actively appending to.
class JournalReplayer {
 public:
  /// `store` must outlive the replayer. `options` supplies the blob
  /// prefix (cadence knobs are ignored here).
  JournalReplayer(storage::ObjectStore* store, CatalogJournalOptions options)
      : store_(store), options_(std::move(options)) {}

  struct BootstrapResult {
    CatalogJournal::RecoveredState state;
    /// Where TailOnce should resume: positioned after the last good
    /// record of the last segment read (or zeroed when no segment was
    /// read, in which case applied_seq carries the checkpoint sequence).
    ReplayCursor cursor;
  };

  /// Loads the latest readable checkpoint and replays the journal tail
  /// on top of it. With parallelism > 1, closed segments are parsed
  /// concurrently (PCTL-style: intra-segment order is preserved by the
  /// per-segment scan, total order is restored by the serial merge that
  /// applies segments in first_seq order), which makes cold catch-up
  /// near-linear in cores; the result is bit-identical to a serial scan.
  common::Result<BootstrapResult> Bootstrap(size_t parallelism = 1) const;

  /// Callback applying one replayed record. A non-OK status aborts the
  /// tail pass without advancing the cursor past that record.
  using ApplyFn = std::function<common::Status(
      uint64_t commit_seq,
      const std::vector<std::pair<std::string, std::optional<std::string>>>&
          writes)>;

  struct TailResult {
    uint64_t records_applied = 0;
    uint64_t segments_visited = 0;
    /// The pass stopped at an unparsable frame in the newest segment —
    /// either a mid-append torn tail the primary is about to finish (the
    /// cursor holds so the next pass re-reads it) or a poisoned
    /// remnant that a future segment will supersede.
    bool torn_tail = false;
  };

  /// One incremental pass: lists segments covering sequences past the
  /// cursor, reads each from the cursor's byte offset (0 for segments
  /// newer than the cursor's), applies records above applied_seq in
  /// order via `apply`, and advances the cursor after every applied or
  /// skipped record. Returns NotFound when the journal has been
  /// garbage-collected past the cursor (the oldest listed segment starts
  /// beyond applied_seq + 1, or a segment vanishes mid-read) — the
  /// caller must re-bootstrap from a checkpoint.
  common::Result<TailResult> TailOnce(ReplayCursor* cursor,
                                      const ApplyFn& apply) const;

 private:
  storage::ObjectStore* store_;
  CatalogJournalOptions options_;
};

}  // namespace polaris::catalog

#endif  // POLARIS_CATALOG_JOURNAL_REPLAYER_H_
