#ifndef POLARIS_CATALOG_JOURNAL_FORMAT_H_
#define POLARIS_CATALOG_JOURNAL_FORMAT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace polaris::catalog::journal_format {

/// On-disk framing of the catalog journal, shared by the appender
/// (CatalogJournal), crash recovery, and the replica tailer
/// (JournalReplayer). Everything here is pure encode/decode — no IO, no
/// locking — so a reader in another process interprets segment bytes with
/// exactly the code the writer used to produce them.

constexpr uint32_t kRecordMagic = 0x314a4c50;      // "PLJ1"
constexpr uint32_t kCheckpointMagic = 0x314b4350;  // "PCK1"
constexpr uint32_t kEpochMagic = 0x31454c50;       // "PLE1"
// magic + crc + body_len
constexpr size_t kFrameHeaderSize = 12;

/// 20-digit zero-padded decimal, so lexicographic blob-name order equals
/// numeric sequence order (ObjectStore::List sorts lexicographically).
std::string Pad20(uint64_t v);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`.
uint32_t Crc32(std::string_view data);

/// Extracts the zero-padded sequence from a segment/checkpoint blob name
/// ("<prefix>/<20 digits>.<ext>"). Returns nullopt for foreign blobs.
std::optional<uint64_t> SeqFromPath(const std::string& path);

/// One decoded journal record: a committed catalog transaction's write
/// set (nullopt values are deletes), keyed by its commit sequence.
struct ParsedRecord {
  uint64_t commit_seq = 0;
  std::vector<std::pair<std::string, std::optional<std::string>>> writes;
};

/// Parses one framed record at the reader's cursor. Returns nullopt (and
/// leaves `torn` explanation to the caller) on any malformation — a torn
/// tail, a bad checksum, garbage. On nullopt the reader's position is
/// unspecified; callers resume from the offset of the last good record.
std::optional<ParsedRecord> ParseRecord(common::ByteReader* in);

/// A PLE1 epoch marker frame. Stamp markers open every group-commit batch
/// with the appending primary's epoch; a seal marker is appended by a
/// promoting replica to the predecessor's open segment and carries the
/// NEW epoch — any frame after a seal belongs to a fenced writer and is a
/// protocol violation (checked by the chaos tests, never produced by a
/// correct run because the seal CAS bumps the blob generation).
struct EpochMarker {
  uint64_t epoch = 0;
  bool seal = false;
};

/// Frames one epoch marker: body = u64 epoch, u8 kind (0 stamp, 1 seal).
std::string EncodeEpochMarker(uint64_t epoch, bool seal);

/// What ParseFrame found at the cursor.
enum class FrameKind {
  kRecord,  // *record filled
  kEpoch,   // *epoch filled
  kTorn,    // malformed/truncated; reader position unspecified
};

/// Parses one frame of either kind at the reader's cursor. On kTorn the
/// reader's position is unspecified; callers resume from the offset of
/// the last good frame (same contract as ParseRecord).
FrameKind ParseFrame(common::ByteReader* in, ParsedRecord* record,
                     EpochMarker* epoch);

/// Frames one record: u32 magic | u32 crc32(body) | u32 body_len | body,
/// where body = u64 commit_seq, varint n, n x (key, has_value, [value]).
std::string EncodeRecord(
    uint64_t commit_seq,
    const std::map<std::string, std::optional<std::string>>& writes);

/// Serializes a PCK1 full-state checkpoint at `commit_seq`.
std::string EncodeCheckpoint(
    uint64_t commit_seq,
    const std::vector<std::pair<std::string, std::string>>& rows);

/// Decodes a PCK1 checkpoint blob. Returns false (outputs untouched) when
/// the blob is malformed — the caller falls back to an older checkpoint.
bool DecodeCheckpoint(std::string_view blob, uint64_t* commit_seq,
                      std::map<std::string, std::string>* rows);

}  // namespace polaris::catalog::journal_format

#endif  // POLARIS_CATALOG_JOURNAL_FORMAT_H_
