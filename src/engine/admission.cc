#include "engine/admission.h"

#include <algorithm>
#include <chrono>

#include "common/resource_usage.h"

namespace polaris::engine {

using common::Result;
using common::Status;

namespace {

common::Micros WallNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status AdmissionController::Shed(const char* cause, std::string_view what,
                                 uint64_t* counter) {
  // Called with mu_ held.
  ++*counter;
  if (metrics_ != nullptr) metrics_->Add("admission.shed.total");
  if (events_ != nullptr) {
    events_->Emit(obs::EventLevel::kWarn, "engine", "statement.shed",
                  {{"cause", cause},
                   {"statement", std::string(what)},
                   {"running", std::to_string(running_)},
                   {"queued", std::to_string(queued_)},
                   {"retry_after_us",
                    std::to_string(options_.retry_after_micros)}});
  }
  return Status::Unavailable(
      std::string("admission control: statement shed (") + cause +
      "); retry after " + std::to_string(options_.retry_after_micros) +
      "us");
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const common::Deadline& deadline, std::string_view what) {
  if (!enabled()) return Ticket();  // inert ticket, nothing to release

  std::unique_lock<std::mutex> lock(mu_);
  if (running_ < options_.max_concurrent) {
    ++running_;
    ++admitted_total_;
    if (metrics_ != nullptr) metrics_->Add("admission.admitted.total");
    return Ticket(this);
  }
  if (queued_ >= options_.max_queue) {
    return Shed("queue_full", what, &shed_queue_full_);
  }

  ++queued_;
  const common::Micros wait_start = WallNow();
  const common::Micros wait_until =
      wait_start + options_.queue_timeout_micros;
  // Wait in short slices so a KILL or an expiring (virtual-time) deadline
  // is noticed promptly even though nobody signals the cv for it.
  constexpr auto kSlice = std::chrono::milliseconds(5);
  Status result = Status::OK();
  bool admitted = false;
  while (true) {
    if (running_ < options_.max_concurrent) {
      admitted = true;
      break;
    }
    Status budget = deadline.bounded() ? deadline.Check(what) : Status::OK();
    if (!budget.ok()) {
      ++cancelled_in_queue_;
      if (metrics_ != nullptr) metrics_->Add("admission.cancelled.total");
      result = budget;
      break;
    }
    if (WallNow() >= wait_until) {
      result = Shed("queue_timeout", what, &shed_queue_timeout_);
      break;
    }
    slot_free_.wait_for(lock, kSlice);
  }
  --queued_;
  const uint64_t waited = static_cast<uint64_t>(
      std::max<common::Micros>(0, WallNow() - wait_start));
  queue_wait_micros_total_ += waited;
  if (metrics_ != nullptr) {
    metrics_->Observe("admission.queue_wait_us",
                      static_cast<common::Micros>(waited));
  }
  // Charged whether the statement was admitted, shed, or cancelled: the
  // queue time of a shed statement is exactly what its resource vector
  // should show. The same interval is the statement's ADMISSION_QUEUE
  // wait, so queue_us and the wait class agree.
  common::WaitStats::Charge(wait_stats_, common::WaitClass::kAdmissionQueue,
                            static_cast<int64_t>(waited));
  if (auto* usage = common::CurrentResourceUsage()) {
    usage->ChargeQueue(static_cast<int64_t>(waited));
  }
  if (!admitted) return result;
  ++running_;
  ++admitted_total_;
  if (metrics_ != nullptr) metrics_->Add("admission.admitted.total");
  return Ticket(this);
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ > 0) --running_;
  }
  slot_free_.notify_one();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.max_concurrent = options_.max_concurrent;
  s.max_queue = options_.max_queue;
  s.running = running_;
  s.queued = queued_;
  s.admitted_total = admitted_total_;
  s.shed_queue_full = shed_queue_full_;
  s.shed_queue_timeout = shed_queue_timeout_;
  s.cancelled_in_queue = cancelled_in_queue_;
  s.queue_wait_micros_total = queue_wait_micros_total_;
  return s;
}

}  // namespace polaris::engine
