#include "engine/system_views.h"

#include <algorithm>
#include <map>
#include <utility>

#include "engine/engine.h"
#include "obs/event_log.h"
#include "obs/time_series.h"

namespace polaris::engine {

using format::ColumnDesc;
using format::ColumnType;
using format::RecordBatch;
using format::Row;
using format::Schema;
using format::Value;

namespace {

Schema MakeSchema(std::vector<ColumnDesc> columns) {
  return Schema(std::move(columns));
}

Value Str(std::string s) { return Value::String(std::move(s)); }
Value I64(int64_t v) { return Value::Int64(v); }
Value I64u(uint64_t v) { return Value::Int64(static_cast<int64_t>(v)); }
Value F64(double v) { return Value::Double(v); }

std::string JoinInt64(const std::vector<int64_t>& values) {
  std::string out;
  for (int64_t v : values) {
    if (!out.empty()) out += ",";
    out += std::to_string(v);
  }
  return out;
}

std::string JoinFields(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out;
  for (const auto& [key, value] : fields) {
    if (!out.empty()) out += " ";
    out += key + "=" + value;
  }
  return out;
}

}  // namespace

bool SystemViews::IsSystemTable(const std::string& table) {
  return table.rfind("sys.", 0) == 0;
}

const std::vector<std::pair<std::string, std::string>>&
SystemViews::Catalog() {
  static const std::vector<std::pair<std::string, std::string>> kCatalog = {
      {"dm_tran_active", "in-flight transactions"},
      {"dm_tran_history", "recently finished transactions (bounded ring)"},
      {"dm_storage_stats", "per-operation object-store traffic and faults"},
      {"dm_sto_jobs", "STO maintenance job history (bounded ring)"},
      {"dm_cache", "data-cache counters and occupancy"},
      {"dm_metrics", "unified metrics registry with p50/p95/p99"},
      {"dm_metrics_history", "time-series sampler rings (name, ts, value)"},
      {"dm_events", "structured event log tail"},
      {"dm_health", "SLO watchdog verdicts"},
      {"dm_admission", "admission-control occupancy and shed counters"},
      {"dm_commit", "catalog group-commit pipeline counters"},
      {"dm_wait_stats", "engine-wide wait-event totals per class"},
      {"dm_replica", "replica apply watermark, lag, and tailer counters"},
      {"dm_failover", "role, epoch lease, fencing and promotion state"},
      {"dm_views", "this catalog"},
      {"query_store", "per-fingerprint workload repository (Query Store)"},
      {"query_store_intervals",
       "per-fingerprint interval-bucketed Query Store stats"},
  };
  return kCatalog;
}

common::Result<RecordBatch> SystemViews::Query(
    const std::string& table) const {
  if (table == "sys.dm_tran_active") return TranActive();
  if (table == "sys.dm_tran_history") return TranHistory();
  if (table == "sys.dm_storage_stats") return StorageStats();
  if (table == "sys.dm_sto_jobs") return StoJobs();
  if (table == "sys.dm_cache") return Cache();
  if (table == "sys.dm_metrics") return Metrics();
  if (table == "sys.dm_metrics_history") return MetricsHistory();
  if (table == "sys.dm_events") return Events();
  if (table == "sys.dm_health") return Health();
  if (table == "sys.dm_admission") return Admission();
  if (table == "sys.dm_commit") return Commit();
  if (table == "sys.dm_wait_stats") return WaitStatsView();
  if (table == "sys.dm_replica") return Replica();
  if (table == "sys.dm_failover") return Failover();
  if (table == "sys.dm_views") return Views();
  if (table == "sys.query_store") return QueryStoreView();
  if (table == "sys.query_store_intervals") return QueryStoreIntervals();
  return common::Status::NotFound("unknown system view: " + table);
}

RecordBatch SystemViews::TranActive() const {
  RecordBatch batch(MakeSchema({{"name", ColumnType::kString},
                                {"txn_id", ColumnType::kInt64},
                                {"state", ColumnType::kString},
                                {"isolation", ColumnType::kString},
                                {"begin_time_us", ColumnType::kInt64},
                                {"begin_seq", ColumnType::kInt64},
                                {"tables", ColumnType::kString},
                                {"cancel_requested", ColumnType::kInt64},
                                {"wait_class", ColumnType::kString},
                                {"wait_us", ColumnType::kInt64}}));
  // Best-effort join against the waits in progress right now: a blocked
  // transaction shows what it is blocked on and for how long (the
  // dm_exec_requests wait_type/wait_time columns).
  std::map<uint64_t, common::WaitStats::CurrentWait> waiting;
  for (const auto& w : engine_->wait_stats()->CurrentWaits()) {
    waiting[w.txn_id] = w;
  }
  const int64_t now_us = common::WaitStats::NowMicros();
  for (const auto& info : engine_->txn_manager()->ActiveTransactionInfos()) {
    std::string wait_class;
    int64_t wait_us = 0;
    auto it = waiting.find(info.txn_id);
    if (it != waiting.end()) {
      wait_class = std::string(common::WaitClassName(it->second.cls));
      wait_us = std::max<int64_t>(0, now_us - it->second.start_us);
    }
    (void)batch.AppendRow(Row{Str("txn-" + std::to_string(info.txn_id)),
                              I64u(info.txn_id), Str("active"),
                              Str(info.isolation), I64(info.begin_time),
                              I64u(info.begin_seq),
                              Str(JoinInt64(info.tables)),
                              I64(info.cancel_requested ? 1 : 0),
                              Str(std::move(wait_class)), I64(wait_us)});
  }
  return batch;
}

RecordBatch SystemViews::TranHistory() const {
  RecordBatch batch(MakeSchema({{"txn_id", ColumnType::kInt64},
                                {"state", ColumnType::kString},
                                {"isolation", ColumnType::kString},
                                {"begin_time_us", ColumnType::kInt64},
                                {"end_time_us", ColumnType::kInt64},
                                {"latency_us", ColumnType::kInt64},
                                {"tables_touched", ColumnType::kInt64},
                                {"cause", ColumnType::kString}}));
  for (const auto& rec :
       engine_->txn_manager()->RecentTransactionHistory()) {
    (void)batch.AppendRow(Row{I64u(rec.txn_id), Str(rec.state),
                              Str(rec.isolation), I64(rec.begin_time),
                              I64(rec.end_time),
                              I64(rec.end_time - rec.begin_time),
                              I64u(rec.tables_touched), Str(rec.cause)});
  }
  return batch;
}

RecordBatch SystemViews::StorageStats() const {
  RecordBatch batch(MakeSchema({{"op", ColumnType::kString},
                                {"ops", ColumnType::kInt64},
                                {"retries", ColumnType::kInt64},
                                {"exhausted", ColumnType::kInt64},
                                {"errors", ColumnType::kInt64},
                                {"bytes", ColumnType::kInt64}}));
  obs::MetricsSnapshot snapshot = engine_->metrics()->Snapshot();
  static const char* kOps[] = {
      "put",       "get",
      "stat",      "delete",
      "list",      "stage_block",
      "commit_block_list", "commit_block_list_if",
      "get_block_list"};
  for (const char* op : kOps) {
    std::string prefix = std::string("store.") + op;
    uint64_t ops = snapshot.counter(prefix + ".ops");
    if (ops == 0) continue;
    (void)batch.AppendRow(Row{Str(op), I64u(ops),
                              I64u(snapshot.counter(prefix + ".retries")),
                              I64u(snapshot.counter(prefix + ".exhausted")),
                              I64u(snapshot.counter(prefix + ".errors")),
                              I64u(snapshot.counter(prefix + ".bytes"))});
  }
  // Chaos layer: faults injected beneath the retry decorator.
  (void)batch.AppendRow(
      Row{Str("injected_faults"),
          I64u(engine_->fault_store()->injected_failures()), I64(0), I64(0),
          I64(0), I64(0)});
  return batch;
}

RecordBatch SystemViews::StoJobs() const {
  RecordBatch batch(MakeSchema({{"job_id", ColumnType::kInt64},
                                {"kind", ColumnType::kString},
                                {"table_id", ColumnType::kInt64},
                                {"start_us", ColumnType::kInt64},
                                {"end_us", ColumnType::kInt64},
                                {"duration_us", ColumnType::kInt64},
                                {"status", ColumnType::kString},
                                {"detail", ColumnType::kString},
                                {"bytes_reclaimed", ColumnType::kInt64}}));
  for (const auto& job : engine_->sto()->JobHistory()) {
    (void)batch.AppendRow(Row{I64u(job.job_id), Str(job.kind),
                              I64(job.table_id), I64(job.start_time),
                              I64(job.end_time),
                              I64(job.end_time - job.start_time),
                              Str(job.status), Str(job.detail),
                              I64u(job.bytes_reclaimed)});
  }
  return batch;
}

RecordBatch SystemViews::Cache() const {
  RecordBatch batch(MakeSchema({{"hits", ColumnType::kInt64},
                                {"misses", ColumnType::kInt64},
                                {"coalesced", ColumnType::kInt64},
                                {"evictions", ColumnType::kInt64},
                                {"entries", ColumnType::kInt64},
                                {"capacity", ColumnType::kInt64}}));
  exec::DataCache::Stats stats = engine_->cache()->stats();
  (void)batch.AppendRow(
      Row{I64u(stats.hits), I64u(stats.misses), I64u(stats.coalesced),
          I64u(stats.evictions),
          I64u(engine_->cache()->size()),
          I64u(engine_->cache()->capacity())});
  return batch;
}

RecordBatch SystemViews::Metrics() const {
  RecordBatch batch(MakeSchema({{"name", ColumnType::kString},
                                {"kind", ColumnType::kString},
                                {"value", ColumnType::kDouble},
                                {"p50", ColumnType::kDouble},
                                {"p95", ColumnType::kDouble},
                                {"p99", ColumnType::kDouble}}));
  obs::MetricsSnapshot snapshot = engine_->MetricsSnapshot();
  for (const auto& [name, value] : snapshot.counters) {
    (void)batch.AppendRow(Row{Str(name), Str("counter"),
                              F64(static_cast<double>(value)),
                              Value::Null(ColumnType::kDouble),
                              Value::Null(ColumnType::kDouble),
                              Value::Null(ColumnType::kDouble)});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    // `value` is the observation count; quantiles carry the latency shape.
    (void)batch.AppendRow(
        Row{Str(name), Str("histogram"), F64(static_cast<double>(h.count)),
            F64(static_cast<double>(h.ApproxQuantile(0.5))),
            F64(static_cast<double>(h.ApproxQuantile(0.95))),
            F64(static_cast<double>(h.ApproxQuantile(0.99)))});
  }
  return batch;
}

RecordBatch SystemViews::MetricsHistory() const {
  RecordBatch batch(MakeSchema({{"name", ColumnType::kString},
                                {"ts_us", ColumnType::kInt64},
                                {"value", ColumnType::kDouble}}));
  const obs::TimeSeriesRecorder* recorder = engine_->time_series();
  for (const auto& name : recorder->SeriesNames()) {
    for (const auto& sample : recorder->Series(name)) {
      (void)batch.AppendRow(Row{Str(name), I64(sample.ts_us),
                                F64(sample.value)});
    }
  }
  return batch;
}

RecordBatch SystemViews::Events() const {
  RecordBatch batch(MakeSchema({{"seq", ColumnType::kInt64},
                                {"ts_us", ColumnType::kInt64},
                                {"level", ColumnType::kString},
                                {"component", ColumnType::kString},
                                {"event", ColumnType::kString},
                                {"txn_id", ColumnType::kInt64},
                                {"trace_id", ColumnType::kInt64},
                                {"fields", ColumnType::kString},
                                {"message", ColumnType::kString}}));
  for (const auto& rec : engine_->events()->Snapshot()) {
    (void)batch.AppendRow(
        Row{I64u(rec.seq), I64(rec.ts_us),
            Str(std::string(obs::EventLevelName(rec.level))),
            Str(rec.component), Str(rec.name), I64u(rec.txn_id),
            I64u(rec.trace_id), Str(JoinFields(rec.fields)),
            Str(rec.message)});
  }
  return batch;
}

RecordBatch SystemViews::Health() const {
  RecordBatch batch(MakeSchema({{"rule", ColumnType::kString},
                                {"status", ColumnType::kString},
                                {"value", ColumnType::kDouble},
                                {"warn_threshold", ColumnType::kDouble},
                                {"fail_threshold", ColumnType::kDouble},
                                {"since_us", ColumnType::kInt64},
                                {"description", ColumnType::kString}}));
  for (const auto& row : engine_->health()->States()) {
    (void)batch.AppendRow(
        Row{Str(row.rule), Str(std::string(obs::HealthStatusName(row.status))),
            F64(row.value), F64(row.warn_threshold), F64(row.fail_threshold),
            I64(row.since_us), Str(row.description)});
  }
  return batch;
}

RecordBatch SystemViews::Admission() const {
  RecordBatch batch(
      MakeSchema({{"max_concurrent", ColumnType::kInt64},
                  {"max_queue", ColumnType::kInt64},
                  {"running", ColumnType::kInt64},
                  {"queued", ColumnType::kInt64},
                  {"admitted_total", ColumnType::kInt64},
                  {"shed_queue_full", ColumnType::kInt64},
                  {"shed_queue_timeout", ColumnType::kInt64},
                  {"cancelled_in_queue", ColumnType::kInt64},
                  {"queue_wait_us_total", ColumnType::kInt64}}));
  AdmissionController::Stats stats = engine_->admission()->stats();
  (void)batch.AppendRow(
      Row{I64(stats.max_concurrent), I64(stats.max_queue),
          I64(stats.running), I64(stats.queued), I64u(stats.admitted_total),
          I64u(stats.shed_queue_full), I64u(stats.shed_queue_timeout),
          I64u(stats.cancelled_in_queue),
          I64u(stats.queue_wait_micros_total)});
  return batch;
}

RecordBatch SystemViews::Commit() const {
  RecordBatch batch(
      MakeSchema({{"commits", ColumnType::kInt64},
                  {"conflicts", ColumnType::kInt64},
                  {"batches", ColumnType::kInt64},
                  {"batch_records", ColumnType::kInt64},
                  {"max_batch", ColumnType::kInt64},
                  {"avg_batch", ColumnType::kDouble},
                  {"flush_failures", ColumnType::kInt64},
                  {"waiters_detached", ColumnType::kInt64},
                  {"high_priority", ColumnType::kInt64},
                  {"prevalidated", ColumnType::kInt64},
                  {"revalidation_fallbacks", ColumnType::kInt64},
                  {"gate_waiters", ColumnType::kInt64},
                  {"pending", ColumnType::kInt64},
                  {"flush_p50_us", ColumnType::kDouble},
                  {"flush_p99_us", ColumnType::kDouble}}));
  catalog::MvccStore::CommitPipelineStats stats =
      engine_->catalog()->store()->PipelineStats();
  obs::MetricsSnapshot snapshot = engine_->MetricsSnapshot();
  double flush_p50 = 0, flush_p99 = 0;
  auto flush = snapshot.histograms.find("catalog.commit.flush_us");
  if (flush != snapshot.histograms.end()) {
    flush_p50 = static_cast<double>(flush->second.ApproxQuantile(0.5));
    flush_p99 = static_cast<double>(flush->second.ApproxQuantile(0.99));
  }
  double avg_batch =
      stats.batches > 0
          ? static_cast<double>(stats.batch_records) / stats.batches
          : 0.0;
  (void)batch.AppendRow(
      Row{I64u(stats.commits), I64u(stats.conflicts), I64u(stats.batches),
          I64u(stats.batch_records), I64u(stats.max_batch), F64(avg_batch),
          I64u(stats.flush_failures), I64u(stats.waiters_detached),
          I64u(stats.high_priority), I64u(stats.prevalidated),
          I64u(stats.revalidation_fallbacks), I64u(stats.gate_waiters),
          I64u(stats.pending), F64(flush_p50), F64(flush_p99)});
  return batch;
}

RecordBatch SystemViews::WaitStatsView() const {
  RecordBatch batch(MakeSchema({{"wait_class", ColumnType::kString},
                                {"waits", ColumnType::kInt64},
                                {"wait_us", ColumnType::kInt64},
                                {"max_wait_us", ColumnType::kInt64},
                                {"signal_us", ColumnType::kInt64}}));
  common::WaitStats::Snapshot waits = engine_->wait_stats()->TakeSnapshot();
  // Every class is emitted, zero or not, so consumers always see the full
  // taxonomy (and a "has this class ever fired" query needs no outer join).
  for (int i = 0; i < common::kWaitClassCount; ++i) {
    const auto& cls = waits.classes[i];
    (void)batch.AppendRow(
        Row{Str(std::string(common::WaitClassName(
                static_cast<common::WaitClass>(i)))),
            I64u(cls.count), I64(cls.total_us), I64(cls.max_us),
            I64(cls.signal_us)});
  }
  return batch;
}

RecordBatch SystemViews::Replica() const {
  RecordBatch batch(MakeSchema({{"state", ColumnType::kString},
                                {"watermark", ColumnType::kInt64},
                                {"lag_records", ColumnType::kInt64},
                                {"staleness_us", ColumnType::kInt64},
                                {"records_applied", ColumnType::kInt64},
                                {"segments_visited", ColumnType::kInt64},
                                {"polls", ColumnType::kInt64},
                                {"tail_errors", ColumnType::kInt64},
                                {"rebootstraps", ColumnType::kInt64},
                                {"bootstrap_records", ColumnType::kInt64},
                                {"bootstrap_ms", ColumnType::kDouble},
                                {"torn_tail_pending", ColumnType::kInt64},
                                {"last_error", ColumnType::kString}}));
  // Empty on primaries: a replica-only view, like dm_sto_jobs is empty
  // before any maintenance ran.
  const replica::ReplicaTailer* tailer = engine_->replica();
  if (tailer == nullptr) return batch;
  replica::ReplicaStatus rs = tailer->GetStatus();
  (void)batch.AppendRow(
      Row{Str(rs.state), I64u(rs.watermark), I64u(tailer->LagLowerBound()),
          I64(rs.staleness_us), I64u(rs.records_applied),
          I64u(rs.segments_visited), I64u(rs.polls), I64u(rs.tail_errors),
          I64u(rs.rebootstraps), I64u(rs.bootstrap_records),
          F64(rs.bootstrap_ms), I64(rs.torn_tail_pending ? 1 : 0),
          Str(rs.last_error)});
  return batch;
}

RecordBatch SystemViews::Failover() const {
  RecordBatch batch(MakeSchema({{"role", ColumnType::kString},
                                {"epoch", ColumnType::kInt64},
                                {"lease_held", ColumnType::kInt64},
                                {"lease_owner", ColumnType::kString},
                                {"lease_expires_at_us", ColumnType::kInt64},
                                {"lease_remaining_us", ColumnType::kInt64},
                                {"lease_renewals", ColumnType::kInt64},
                                {"heartbeats", ColumnType::kInt64},
                                {"lease_losses", ColumnType::kInt64},
                                {"promotions", ColumnType::kInt64},
                                {"last_promote_tail_records",
                                 ColumnType::kInt64},
                                {"last_promote_ms", ColumnType::kDouble},
                                {"fenced", ColumnType::kInt64},
                                {"fence_reason", ColumnType::kString}}));
  FailoverStatus fs = engine_->GetFailoverStatus();
  (void)batch.AppendRow(
      Row{Str(fs.role), I64u(fs.epoch), I64(fs.lease_held ? 1 : 0),
          Str(fs.lease_owner), I64(fs.lease_expires_at),
          I64(fs.lease_remaining_us), I64u(fs.lease_renewals),
          I64u(fs.heartbeats), I64u(fs.lease_losses), I64u(fs.promotions),
          I64u(fs.last_promote_tail_records), F64(fs.last_promote_ms),
          I64(fs.fenced ? 1 : 0), Str(fs.fence_reason)});
  return batch;
}

RecordBatch SystemViews::Views() const {
  RecordBatch batch(MakeSchema({{"view_name", ColumnType::kString},
                                {"description", ColumnType::kString}}));
  for (const auto& [name, description] : Catalog()) {
    (void)batch.AppendRow(Row{Str("sys." + name), Str(description)});
  }
  return batch;
}

RecordBatch SystemViews::QueryStoreView() const {
  RecordBatch batch(
      MakeSchema({{"fingerprint_id", ColumnType::kInt64},
                  {"fingerprint", ColumnType::kString},
                  {"kind", ColumnType::kString},
                  // "executions", not "count": COUNT is a reserved word
                  // in the SQL surface.
                  {"executions", ColumnType::kInt64},
                  {"ok", ColumnType::kInt64},
                  {"errors", ColumnType::kInt64},
                  {"conflicts", ColumnType::kInt64},
                  {"shed", ColumnType::kInt64},
                  {"killed", ColumnType::kInt64},
                  {"expired", ColumnType::kInt64},
                  {"wall_p50_us", ColumnType::kInt64},
                  {"wall_p99_us", ColumnType::kInt64},
                  {"total_wall_us", ColumnType::kInt64},
                  {"total_queue_us", ColumnType::kInt64},
                  {"total_commit_us", ColumnType::kInt64},
                  {"store_read_ops", ColumnType::kInt64},
                  {"store_write_ops", ColumnType::kInt64},
                  {"store_read_bytes", ColumnType::kInt64},
                  {"store_write_bytes", ColumnType::kInt64},
                  {"store_retries", ColumnType::kInt64},
                  {"cache_hits", ColumnType::kInt64},
                  {"cache_misses", ColumnType::kInt64},
                  {"statement_retries", ColumnType::kInt64},
                  {"rows_scanned", ColumnType::kInt64},
                  {"rows_returned", ColumnType::kInt64},
                  {"total_wait_us", ColumnType::kInt64},
                  {"top_wait_class", ColumnType::kString},
                  {"top_wait_us", ColumnType::kInt64},
                  {"first_seen_us", ColumnType::kInt64},
                  {"last_seen_us", ColumnType::kInt64}}));
  for (const auto& row : engine_->query_store()->Snapshot()) {
    (void)batch.AppendRow(
        Row{I64u(row.fingerprint_id), Str(row.fingerprint), Str(row.kind),
            I64u(row.count), I64u(row.ok), I64u(row.errors),
            I64u(row.conflicts), I64u(row.shed), I64u(row.killed),
            I64u(row.expired), I64(row.wall_p50_us), I64(row.wall_p99_us),
            I64(row.total_wall_us), I64(row.total_queue_us),
            I64(row.total_commit_us), I64u(row.store_read_ops),
            I64u(row.store_write_ops), I64u(row.store_read_bytes),
            I64u(row.store_write_bytes), I64u(row.store_retries),
            I64u(row.cache_hits), I64u(row.cache_misses),
            I64u(row.statement_retries), I64u(row.rows_scanned),
            I64u(row.rows_returned), I64(row.total_wait_us),
            Str(row.top_wait_class), I64(row.top_wait_us),
            I64(row.first_seen_us), I64(row.last_seen_us)});
  }
  return batch;
}

RecordBatch SystemViews::QueryStoreIntervals() const {
  RecordBatch batch(MakeSchema({{"fingerprint_id", ColumnType::kInt64},
                                {"fingerprint", ColumnType::kString},
                                {"interval_start_us", ColumnType::kInt64},
                                {"executions", ColumnType::kInt64},
                                {"errors", ColumnType::kInt64},
                                {"wall_p50_us", ColumnType::kInt64},
                                {"wall_p99_us", ColumnType::kInt64},
                                {"total_wall_us", ColumnType::kInt64},
                                {"store_ops", ColumnType::kInt64},
                                {"store_bytes", ColumnType::kInt64},
                                {"rows_scanned", ColumnType::kInt64},
                                {"rows_returned", ColumnType::kInt64},
                                {"wait_us", ColumnType::kInt64}}));
  for (const auto& row : engine_->query_store()->IntervalSnapshot()) {
    (void)batch.AppendRow(
        Row{I64u(row.fingerprint_id), Str(row.fingerprint),
            I64(row.interval_start_us), I64u(row.count), I64u(row.errors),
            I64(row.wall_p50_us), I64(row.wall_p99_us), I64(row.total_wall_us),
            I64u(row.store_ops), I64u(row.store_bytes), I64u(row.rows_scanned),
            I64u(row.rows_returned), I64(row.wait_us)});
  }
  return batch;
}

}  // namespace polaris::engine
