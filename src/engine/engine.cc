#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>

#include "common/bytes.h"
#include "common/crashpoint.h"
#include "common/logging.h"
#include "common/trace_context.h"
#include "engine/system_views.h"

namespace polaris::engine {

using catalog::IsolationMode;
using catalog::TableMeta;
using common::Result;
using common::Status;
using format::RecordBatch;

namespace {
/// Aligns dependent sub-option defaults with the top-level options.
EngineOptions NormalizeOptions(EngineOptions options) {
  options.sto_options.file_options = options.file_options;
  return options;
}
}  // namespace

PolarisEngine::PolarisEngine(EngineOptions options,
                             storage::ObjectStore* store,
                             common::Clock* clock)
    : options_(NormalizeOptions(options)),
      owned_clock_(clock != nullptr
                       ? nullptr
                       : std::make_unique<common::SimClock>(1'000'000)),
      clock_(clock != nullptr ? clock : owned_clock_.get()),
      events_(clock_, options_.event_log_capacity),
      owned_store_(store != nullptr || !options_.data_dir.empty()
                       ? nullptr
                       : std::make_unique<storage::MemoryObjectStore>(clock_)),
      owned_local_store_(
          store == nullptr && !options_.data_dir.empty()
              ? std::make_unique<storage::LocalFileObjectStore>(
                    options_.data_dir, clock_,
                    /*read_only=*/options_.replica)
              : nullptr),
      fault_store_(std::make_unique<storage::FaultInjectionStore>(
          store != nullptr
              ? store
              : (owned_local_store_ != nullptr
                     ? static_cast<storage::ObjectStore*>(
                           owned_local_store_.get())
                     : owned_store_.get()),
          options_.fault_seed, clock_)),
      retry_store_(std::make_unique<storage::RetryingObjectStore>(
          fault_store_.get(), clock_, options_.storage_retry, &metrics_)),
      breaker_store_(std::make_unique<storage::CircuitBreakerStore>(
          retry_store_.get(), clock_, options_.circuit_breaker)),
      store_(breaker_store_.get()),
      admission_(options_.admission),
      catalog_(clock_),
      builder_(store_),
      cache_(store_, options_.cache_capacity),
      topology_(dcp::Topology::ReadWritePools(options_.read_pool_max_nodes,
                                              options_.write_pool_max_nodes)),
      scheduler_(&topology_, options_.worker_threads),
      txn_manager_(&catalog_, store_, &builder_, clock_,
                   options_.txn_options),
      sto_(&txn_manager_, &cache_, &scheduler_, options_.sto_options),
      query_store_(clock_, options_.query_store),
      recorder_(&metrics_, options_.metrics_history_capacity),
      watchdog_(&recorder_, &events_, &metrics_) {
  fault_store_->set_policy(options_.fault_policy);
  wait_stats_.set_enabled(options_.wait_stats_enabled);
  catalog_.store()->set_wait_stats(&wait_stats_);
  admission_.set_wait_stats(&wait_stats_);
  retry_store_->set_wait_stats(&wait_stats_);
  cache_.set_wait_stats(&wait_stats_);
  scheduler_.set_wait_stats(&wait_stats_);
  cache_.set_metrics(&metrics_);
  scheduler_.set_metrics(&metrics_);
  sto_.set_metrics(&metrics_);
  sto_.set_tracer(&tracer_);
  retry_store_->set_event_log(&events_);
  breaker_store_->set_metrics(&metrics_);
  breaker_store_->set_event_log(&events_);
  admission_.set_metrics(&metrics_);
  catalog_.store()->set_metrics(&metrics_);
  admission_.set_event_log(&events_);
  txn_manager_.set_event_log(&events_);
  sto_.set_event_log(&events_);
  views_ = std::make_unique<SystemViews>(this);
  // Crash points are process-global test machinery; the observer follows
  // the same last-engine-wins convention as Arm and is cleared on
  // destruction, turning fired points into typed events.
  common::CrashPoints::SetFireObserver([this](std::string_view point) {
    events_.Emit(obs::EventLevel::kWarn, "crash", "crashpoint.fired",
                 {{"point", std::string(point)}});
  });
  role_.store(options_.replica ? EngineRole::kReplica : EngineRole::kPrimary,
              std::memory_order_release);
  InstallDefaultSloRules();
  StartSampler();
  if (owned_local_store_ != nullptr) {
    // Persisted created_at stamps must stay in the past of the (virtual)
    // clock, or GC's created_at-vs-active-transaction comparisons would
    // misclassify old blobs as in-flight after a reopen.
    common::Micros max_seen = owned_local_store_->max_created_at();
    if (max_seen >= clock_->Now()) {
      clock_->Advance(max_seen + 1 - clock_->Now());
    }
  }
}

PolarisEngine::~PolarisEngine() {
  // Deterministic teardown ordering (DESIGN.md §12): refuse any new
  // promotion, wait out an in-flight one, then stop the background
  // threads youngest-dependency-first — heartbeat (may call Promote or
  // Fence), tailer (reads the decorators, writes the catalog), sampler.
  shutting_down_.store(true, std::memory_order_release);
  {
    // Barrier: an in-flight Promote finishes here; later ones see
    // shutting_down_ and refuse before touching any member.
    std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  }
  StopFailoverThread();
  if (replica_tailer_ != nullptr) replica_tailer_->Stop();
  common::CrashPoints::SetFireObserver({});
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_thread_.joinable()) sampler_thread_.join();
}

void PolarisEngine::StartFailoverThread() {
  if (options_.failover.heartbeat_period_micros <= 0) return;
  if (lease_ == nullptr) return;
  std::lock_guard<std::mutex> lock(hb_mu_);
  if (hb_thread_.joinable() || hb_stop_ ||
      shutting_down_.load(std::memory_order_acquire)) {
    return;
  }
  hb_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(hb_mu_);
    while (!hb_stop_) {
      hb_cv_.wait_for(lock, std::chrono::microseconds(
                                options_.failover.heartbeat_period_micros));
      if (hb_stop_) break;
      lock.unlock();
      (void)HeartbeatOnce();
      lock.lock();
    }
  });
}

void PolarisEngine::StopFailoverThread() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
    to_join = std::move(hb_thread_);
  }
  hb_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void PolarisEngine::StartSampler() {
  if (options_.sampler_period_micros == 0) return;
  sampler_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(sampler_mu_);
    while (!sampler_stop_) {
      sampler_cv_.wait_for(
          lock, std::chrono::microseconds(options_.sampler_period_micros));
      if (sampler_stop_) break;
      lock.unlock();
      SampleObservabilityOnce();
      lock.lock();
    }
  });
}

void PolarisEngine::SampleObservabilityOnce() {
  std::vector<std::pair<std::string, double>> gauges;
  gauges.emplace_back("txn.active",
                      static_cast<double>(txn_manager_.active_transactions()));
  gauges.emplace_back("sto.manifests_backlog",
                      static_cast<double>(sto_.pending_manifests_total()));
  gauges.emplace_back("tracer.dropped_spans",
                      static_cast<double>(tracer_.dropped_spans()));
  gauges.emplace_back("tracer.ring_spans",
                      static_cast<double>(tracer_.size()));
  gauges.emplace_back("cache.entries", static_cast<double>(cache_.size()));
  gauges.emplace_back("query_store.fingerprints",
                      static_cast<double>(query_store_.fingerprints()));
  {
    // Cumulative per-class wait totals as gauges: dm_metrics_history then
    // holds the series, and window deltas read as wait rates.
    common::WaitStats::Snapshot waits = wait_stats_.TakeSnapshot();
    gauges.emplace_back("waits.total_us",
                        static_cast<double>(waits.total_us()));
    for (int i = 0; i < common::kWaitClassCount; ++i) {
      if (waits.classes[i].count == 0) continue;
      gauges.emplace_back(
          "waits." +
              std::string(common::WaitClassName(
                  static_cast<common::WaitClass>(i))) +
              ".us",
          static_cast<double>(waits.classes[i].total_us));
    }
  }
  // Breaker state as a severity gauge: 0 closed, 1 half-open, 2 open —
  // ordered so above-is-bad SLO thresholds read naturally.
  double breaker_severity = 0.0;
  switch (breaker_store_->state()) {
    case storage::CircuitBreakerStore::State::kClosed:
      breaker_severity = 0.0;
      break;
    case storage::CircuitBreakerStore::State::kHalfOpen:
      breaker_severity = 1.0;
      break;
    case storage::CircuitBreakerStore::State::kOpen:
      breaker_severity = 2.0;
      break;
  }
  gauges.emplace_back("store.breaker.state", breaker_severity);
  AdmissionController::Stats admission = admission_.stats();
  gauges.emplace_back("admission.running",
                      static_cast<double>(admission.running));
  gauges.emplace_back("admission.queued",
                      static_cast<double>(admission.queued));
  if (replica_tailer_ != nullptr) {
    replica::ReplicaStatus rs = replica_tailer_->GetStatus();
    gauges.emplace_back("replica.watermark",
                        static_cast<double>(rs.watermark));
    gauges.emplace_back("replica.staleness_us",
                        static_cast<double>(rs.staleness_us));
  }
  common::Micros now = clock_->Now();
  recorder_.SampleOnce(now, gauges);
  watchdog_.Evaluate(now);
}

void PolarisEngine::InstallDefaultSloRules() {
  {
    obs::SloRule rule;
    rule.name = "storage-retry-rate";
    rule.description = "store retries per operation over the sample window";
    rule.kind = obs::SloRule::Kind::kRatio;
    rule.metric = "store.retries.total";
    rule.denominators = {"store.ops.total"};
    rule.warn_threshold = 0.1;
    rule.fail_threshold = 0.5;
    rule.min_activity = 10;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "storage-retry-exhaustion";
    rule.description =
        "operations that failed after exhausting the retry budget";
    rule.kind = obs::SloRule::Kind::kDelta;
    rule.metric = "store.exhausted.total";
    rule.warn_threshold = 0;  // any exhaustion over the window warns
    rule.fail_threshold = 5;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "journal-append-p99";
    rule.description = "catalog journal append p99 latency (us)";
    rule.kind = obs::SloRule::Kind::kGauge;
    rule.metric = "catalog.journal.append_us.p99";
    rule.warn_threshold = 100'000;
    rule.fail_threshold = 1'000'000;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "sto-checkpoint-backlog";
    rule.description = "manifests accumulated past the newest checkpoints";
    rule.kind = obs::SloRule::Kind::kGauge;
    rule.metric = "sto.manifests_backlog";
    double per = static_cast<double>(
        std::max<uint64_t>(1, options_.sto_options.manifests_per_checkpoint));
    rule.warn_threshold = per * 2;
    rule.fail_threshold = per * 5;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "cache-hit-rate";
    rule.description = "data cache hit rate floor over the sample window";
    rule.kind = obs::SloRule::Kind::kRatio;
    rule.metric = "cache.hits";
    rule.denominators = {"cache.hits", "cache.misses"};
    rule.above_is_bad = false;
    rule.warn_threshold = 0.5;
    rule.fail_threshold = 0.2;
    rule.min_activity = 20;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "storage-circuit-breaker";
    rule.description =
        "circuit breaker state (0 closed, 1 half-open, 2 open)";
    rule.kind = obs::SloRule::Kind::kGauge;
    rule.metric = "store.breaker.state";
    rule.warn_threshold = 0.5;  // half-open warns
    rule.fail_threshold = 1.5;  // open fails
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "admission-shed-rate";
    rule.description = "statements shed at admission over the sample window";
    rule.kind = obs::SloRule::Kind::kDelta;
    rule.metric = "admission.shed.total";
    rule.warn_threshold = 0;  // any shedding over the window warns
    rule.fail_threshold = 100;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "query-store-latency-regression";
    rule.description =
        "worst per-fingerprint p99 vs trailing-interval baseline (ratio)";
    rule.kind = obs::SloRule::Kind::kProbe;
    rule.probe = [this](bool* has_data) {
      obs::QueryStore::Regression worst;
      if (!query_store_.WorstRegression(&worst)) {
        *has_data = false;
        return 0.0;
      }
      return worst.ratio;
    };
    rule.warn_threshold = 2.0;   // current p99 doubled vs baseline
    rule.fail_threshold = 10.0;  // order-of-magnitude regression
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "wait-share";
    rule.description =
        "largest wait class's share of statement wall time over the window";
    rule.kind = obs::SloRule::Kind::kProbe;
    // Window deltas of cumulative totals, carried across evaluations. The
    // denominator is recorded statement wall time, so the rule abstains
    // when the query store is off or the window saw < 100ms of statements
    // (a share over near-zero wall time is noise, not a diagnosis).
    struct WaitShareState {
      common::WaitStats::Snapshot prev_waits;
      int64_t prev_wall_us = 0;
      bool primed = false;
    };
    auto state = std::make_shared<WaitShareState>();
    rule.probe = [this, state](bool* has_data) {
      common::WaitStats::Snapshot now = wait_stats_.TakeSnapshot();
      const int64_t wall_us = query_store_.total_wall_us();
      const bool primed = state->primed;
      int64_t worst_delta_us = 0;
      for (int i = 0; i < common::kWaitClassCount; ++i) {
        worst_delta_us = std::max(
            worst_delta_us, now.classes[i].total_us -
                                state->prev_waits.classes[i].total_us);
      }
      const int64_t wall_delta_us = wall_us - state->prev_wall_us;
      state->prev_waits = now;
      state->prev_wall_us = wall_us;
      state->primed = true;
      if (!primed || !wait_stats_.enabled() || !query_store_.enabled() ||
          wall_delta_us < 100'000) {
        *has_data = false;
        return 0.0;
      }
      return static_cast<double>(worst_delta_us) /
             static_cast<double>(wall_delta_us);
    };
    rule.warn_threshold = options_.wait_share_warn;
    rule.fail_threshold = options_.wait_share_fail;
    watchdog_.AddRule(rule);
  }
  if (options_.replica) {
    {
      obs::SloRule rule;
      rule.name = "replica-staleness";
      rule.description =
          "engine-clock micros since the replica last reached the journal "
          "tip (read-staleness upper bound)";
      rule.kind = obs::SloRule::Kind::kProbe;
      rule.probe = [this](bool* has_data) {
        // The tailer attaches after construction (AttachReplica); the
        // rule is installed first, so probe defensively.
        if (replica_tailer_ == nullptr) {
          *has_data = false;
          return 0.0;
        }
        return static_cast<double>(replica_tailer_->GetStatus().staleness_us);
      };
      rule.warn_threshold = 5e6;   // 5 s behind warns
      rule.fail_threshold = 60e6;  // a minute behind fails
      watchdog_.AddRule(rule);
    }
    {
      obs::SloRule rule;
      rule.name = "replica-tail-errors";
      rule.description = "failed tail polls over the sample window";
      rule.kind = obs::SloRule::Kind::kDelta;
      rule.metric = "replica.tail_errors";
      rule.warn_threshold = 0;  // any failed poll over the window warns
      rule.fail_threshold = 10;
      watchdog_.AddRule(rule);
    }
  }
  {
    obs::SloRule rule;
    rule.name = "lease-expiry";
    rule.description =
        "micros of validity left on the primary's epoch lease (goes "
        "negative once expired; a third of the duration left warns)";
    rule.kind = obs::SloRule::Kind::kProbe;
    // Abstains unless this node holds the lease AND a heartbeat is
    // renewing it — without a heartbeat, expiry is expected (tests that
    // advance the virtual clock freely) and not a health signal.
    rule.probe = [this](bool* has_data) {
      if (lease_ == nullptr || !lease_->held() ||
          role() != EngineRole::kPrimary ||
          options_.failover.heartbeat_period_micros <= 0) {
        *has_data = false;
        return 0.0;
      }
      return static_cast<double>(lease_->expires_at()) -
             static_cast<double>(clock_->Now());
    };
    rule.above_is_bad = false;
    rule.warn_threshold =
        static_cast<double>(options_.failover.lease_duration_micros) / 3.0;
    rule.fail_threshold = 0.0;
    watchdog_.AddRule(rule);
  }
  {
    obs::SloRule rule;
    rule.name = "tracer-drops";
    rule.description = "spans evicted from the tracer ring (truncated traces)";
    rule.kind = obs::SloRule::Kind::kDelta;
    rule.metric = "tracer.dropped_spans";
    rule.warn_threshold = 0;   // any drop over the window warns
    rule.fail_threshold = 1e12;  // drops degrade traces, never the engine
    watchdog_.AddRule(rule);
  }
}

common::Result<std::unique_ptr<PolarisEngine>> PolarisEngine::Open(
    EngineOptions options, common::Clock* clock) {
  if (options.replica && options.data_dir.empty()) {
    return Status::InvalidArgument(
        "replica mode needs a shared store: set data_dir or use OpenOn");
  }
  auto engine = std::make_unique<PolarisEngine>(options, nullptr, clock);
  if (!options.data_dir.empty()) {
    POLARIS_RETURN_IF_ERROR(engine->owned_local_store_->init_status());
    if (options.replica) {
      POLARIS_RETURN_IF_ERROR(engine->AttachReplica());
    } else {
      POLARIS_RETURN_IF_ERROR(engine->RecoverCatalog());
    }
  }
  return engine;
}

common::Result<std::unique_ptr<PolarisEngine>> PolarisEngine::OpenOn(
    EngineOptions options, storage::ObjectStore* store, common::Clock* clock) {
  if (store == nullptr) {
    return Status::InvalidArgument("OpenOn needs an external store");
  }
  options.data_dir.clear();  // the external store is the database
  auto engine = std::make_unique<PolarisEngine>(options, store, clock);
  if (options.replica) {
    POLARIS_RETURN_IF_ERROR(engine->AttachReplica());
  } else {
    POLARIS_RETURN_IF_ERROR(engine->RecoverCatalog());
  }
  return engine;
}

Status PolarisEngine::AttachReplica() {
  // Reject catalog writes at the root: even a code path that slips past
  // the engine-level CheckWritable guards cannot claim commit sequences.
  catalog_.store()->set_read_only(true);
  replica_tailer_ = std::make_unique<replica::ReplicaTailer>(
      store_, options_.journal_options, catalog_.store(), clock_, &metrics_,
      &tracer_, &events_, options_.replica_options);
  replica_tailer_->set_wait_stats(&wait_stats_);
  POLARIS_RETURN_IF_ERROR(replica_tailer_->BootstrapInitial());
  replica_tailer_->Start();
  // The replica watches (but does not claim) the primary's epoch lease:
  // the heartbeat observes expiry for supervised auto-promotion, and
  // Promote() claims the next epoch through this same object. A durable
  // replica's own store is read-only, so lease and seal writes go through
  // a writable side channel on the same directory (opened read-only to
  // skip the staged-block sweep, then flipped — ExitReadOnly never
  // sweeps, so the primary's in-flight staged blocks survive).
  if (owned_local_store_ != nullptr) {
    failover_store_ = std::make_unique<storage::LocalFileObjectStore>(
        options_.data_dir, clock_, /*read_only=*/true);
    POLARIS_RETURN_IF_ERROR(failover_store_->init_status());
    POLARIS_RETURN_IF_ERROR(failover_store_->ExitReadOnly());
  }
  lease_ = std::make_unique<replica::EpochLease>(
      failover_store_ != nullptr
          ? static_cast<storage::ObjectStore*>(failover_store_.get())
          : store_,
      options_.journal_options.prefix + "lease", clock_, options_.failover);
  StartFailoverThread();
  replica::ReplicaStatus rs = replica_tailer_->GetStatus();
  events_.Emit(obs::EventLevel::kInfo, "engine", "engine.replica_attached",
               {{"data_dir", options_.data_dir},
                {"watermark", std::to_string(rs.watermark)},
                {"bootstrap_records", std::to_string(rs.bootstrap_records)},
                {"bootstrap_segments", std::to_string(rs.bootstrap_segments)}});
  POLARIS_LOG(kInfo, "engine")
      << "attached read-only replica"
      << (options_.data_dir.empty() ? "" : " at " + options_.data_dir)
      << ": watermark " << rs.watermark << ", bootstrap replayed "
      << rs.bootstrap_records << " records over " << rs.bootstrap_segments
      << " segments";
  return Status::OK();
}

Status PolarisEngine::CheckWritable(const char* op) const {
  switch (role()) {
    case EngineRole::kPrimary:
      return Status::OK();
    case EngineRole::kReplica:
      return Status::FailedPrecondition(std::string("read-only replica: ") +
                                        op + " is not allowed");
    case EngineRole::kFenced:
      return Status::FailedPrecondition(
          std::string("fenced: ") + op +
          " rejected because a newer epoch owns this database; this "
          "ex-primary serves reads only");
  }
  return Status::OK();  // unreachable
}

Status PolarisEngine::MinReadWatermark(uint64_t seq) {
  // A primary's committed sequences are visible the moment Commit
  // returns; only a replica can lag behind.
  if (replica_tailer_ == nullptr) return Status::OK();
  return replica_tailer_->WaitForCommit(seq);
}

Status PolarisEngine::RecoverCatalog() {
  journal_ = std::make_unique<catalog::CatalogJournal>(
      store_, options_.journal_options, &metrics_);
  POLARIS_ASSIGN_OR_RETURN(recovery_, journal_->Recover());
  if (recovery_.commit_seq > 0) {
    catalog_.store()->ImportSnapshot(recovery_.rows, recovery_.commit_seq);
  }
  recovery_.rows.clear();  // imported; keep only the summary
  catalog_.store()->SetCommitListener(
      [this](const std::vector<catalog::CommitRecord>& records) {
        return journal_->AppendBatch(records);
      });
  sto_.set_catalog_journal(journal_.get());
  // Claim the epoch lease before serving writes: if another node already
  // holds a newer epoch we must not come up as a second writer. The claim
  // is administrative (CAS to epoch+1, no expiry wait) — a crashed
  // primary's stale lease never blocks its own restart.
  lease_ = std::make_unique<replica::EpochLease>(
      store_, options_.journal_options.prefix + "lease", clock_,
      options_.failover);
  POLARIS_RETURN_IF_ERROR(lease_->Claim());
  metrics_.Add("failover.lease_claims");
  journal_->set_epoch(lease_->epoch());
  WireFencing();
  StartFailoverThread();
  const uint64_t swept = owned_local_store_ != nullptr
                             ? owned_local_store_->swept_staged_blocks()
                             : 0;
  events_.Emit(
      obs::EventLevel::kInfo, "engine", "engine.recovered",
      {{"data_dir", options_.data_dir},
       {"checkpoint_seq", std::to_string(recovery_.checkpoint_seq)},
       {"records_replayed", std::to_string(recovery_.records_replayed)},
       {"commit_seq", std::to_string(recovery_.commit_seq)},
       {"torn_tail", recovery_.torn_tail ? "true" : "false"},
       {"swept_staged_blocks", std::to_string(swept)}});
  POLARIS_LOG(kInfo, "engine")
      << "opened durable database"
      << (options_.data_dir.empty() ? "" : " at " + options_.data_dir)
      << ": checkpoint seq " << recovery_.checkpoint_seq << ", replayed "
      << recovery_.records_replayed << " journal records to seq "
      << recovery_.commit_seq
      << (recovery_.torn_tail ? " (dropped torn tail record)" : "")
      << ", swept " << swept << " orphaned staged blocks";
  return Status::OK();
}

void PolarisEngine::WireFencing() {
  // The guard runs at the top of every journal append, under the
  // journal's own mutex: a primary that already knows it lost the lease
  // (or let it expire unrenewed while a heartbeat was supposed to renew
  // it) refuses the batch before wasting a CAS round-trip. Expiry is only
  // enforced when a heartbeat is actually running — without one, clock
  // advances past the lease duration are routine (virtual-clock tests),
  // not evidence of a second writer.
  journal_->set_fence_guard([this]() -> Status {
    if (role() == EngineRole::kFenced) {
      return Status::FailedPrecondition(
          "fenced: this primary lost the epoch lease");
    }
    if (lease_ != nullptr && lease_->held() &&
        options_.failover.heartbeat_period_micros > 0 &&
        clock_->Now() > lease_->expires_at()) {
      return Status::FailedPrecondition(
          "fenced: epoch lease " + std::to_string(lease_->epoch()) +
          " expired unrenewed; refusing to append as a possibly "
          "superseded writer");
    }
    return Status::OK();
  });
  // The listener fires when an append loses the storage CAS — the
  // authoritative fencing signal (a promoted successor sealed our
  // segment). Called outside the journal mutex, so Fence can take the
  // engine's own locks freely.
  journal_->set_fence_listener(
      [this](const Status& why) { Fence(why.message()); });
}

void PolarisEngine::Fence(const std::string& reason) {
  // Only a primary can be fenced; replicas are already read-only and a
  // second Fence is a no-op (first reason wins).
  EngineRole expected = EngineRole::kPrimary;
  if (!role_.compare_exchange_strong(expected, EngineRole::kFenced,
                                     std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(failover_mu_);
    fence_reason_ = reason;
  }
  if (lease_ != nullptr) lease_->Release();
  if (journal_ != nullptr) journal_->Fence();
  // Root-level write rejection: in-flight commits that already passed
  // CheckWritable die at the commit listener; new ones die here.
  catalog_.store()->set_read_only(true);
  metrics_.Add("failover.fences");
  events_.Emit(obs::EventLevel::kError, "failover", "failover.fenced",
               {{"reason", reason}});
  POLARIS_LOG(kError, "failover")
      << "fenced: " << reason << "; degrading to read-only";
}

Status PolarisEngine::HeartbeatOnce() {
  switch (role()) {
    case EngineRole::kFenced:
      return Status::FailedPrecondition("fenced: heartbeat has no lease");
    case EngineRole::kPrimary: {
      if (lease_ == nullptr) return Status::OK();  // in-memory engine
      Status st = lease_->Renew();
      if (st.ok()) {
        std::lock_guard<std::mutex> lock(failover_mu_);
        ++heartbeats_;
        metrics_.Add("failover.lease_renewals");
        return st;
      }
      if (st.IsFailedPrecondition()) {
        // Another node claimed a newer epoch out from under us. Fence
        // now rather than waiting to lose the journal CAS.
        {
          std::lock_guard<std::mutex> lock(failover_mu_);
          ++lease_losses_;
        }
        metrics_.Add("failover.lease_losses");
        Fence("lease lost: " + st.message());
        return st;
      }
      // Transient storage error. Survivable while the lease is still
      // valid, but once the clock passes expiry a successor may already
      // be writing — self-fence rather than risk a dual write.
      if (clock_->Now() > lease_->expires_at()) {
        Fence("lease expired unrenewed: " + st.message());
      }
      return st;
    }
    case EngineRole::kReplica: {
      if (lease_ == nullptr) return Status::OK();
      common::Result<replica::LeaseInfo> info = lease_->Read();
      if (!info.ok()) return info.status();
      bool expired = false;
      {
        std::lock_guard<std::mutex> lock(failover_mu_);
        ++heartbeats_;
        observed_lease_ = *info;
        expired = observed_lease_.epoch > 0 &&
                  clock_->Now() > observed_lease_.expires_at;
      }
      if (expired && options_.failover.auto_promote) {
        common::Result<PromoteResult> promoted = Promote();
        if (!promoted.ok()) return promoted.status();
      }
      return Status::OK();
    }
  }
  return Status::OK();  // unreachable
}

common::Result<PromoteResult> PolarisEngine::Promote() {
  // lifecycle_mu_ serializes promotion against itself (heartbeat
  // auto-promote racing an explicit PROMOTE) and against the destructor.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::Unavailable("PROMOTE: engine is shutting down");
  }
  if (role() != EngineRole::kReplica) {
    return Status::FailedPrecondition(
        "PROMOTE: only a replica can be promoted (role is " +
        std::string(role() == EngineRole::kPrimary ? "primary" : "fenced") +
        ")");
  }
  if (replica_tailer_ == nullptr || lease_ == nullptr) {
    return Status::FailedPrecondition(
        "PROMOTE: this replica has no tailer or lease to promote through");
  }
  obs::Span span(&tracer_, "failover.promote");
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t before_applied = replica_tailer_->GetStatus().records_applied;

  // 1. Claim epoch+1. From here on the old primary's heartbeat renewals
  //    lose their CAS and it self-fences on the next beat.
  POLARIS_RETURN_IF_ERROR(lease_->Claim());
  const uint64_t epoch = lease_->epoch();
  POLARIS_CRASH_POINT(common::crash::kPromoteClaimed);

  // 2. Stop tailing and seal the incumbent's open journal segment: its
  //    next group-commit append loses the storage CAS and it fences even
  //    if its heartbeat is wedged. The fence is in the data path, not
  //    just the control path.
  replica_tailer_->Stop();
  POLARIS_ASSIGN_OR_RETURN(
      std::string sealed,
      replica::SealNewestSegment(
          failover_store_ != nullptr
              ? static_cast<storage::ObjectStore*>(failover_store_.get())
              : store_,
          options_.journal_options, epoch));
  POLARIS_CRASH_POINT(common::crash::kPromoteSealed);

  // 3. Drain the remaining journal tail. PollOnce still works after
  //    Stop — it only needs the poll mutex — and a successful pass means
  //    every acked commit up to the seal is applied locally.
  POLARIS_RETURN_IF_ERROR(replica_tailer_->PollOnce());
  const uint64_t watermark = replica_tailer_->watermark();
  const uint64_t tail_records =
      replica_tailer_->GetStatus().records_applied - before_applied;
  POLARIS_CRASH_POINT(common::crash::kPromoteReplayed);

  // 4. Become the writer: a fresh journal primed at the watermark (no
  //    replay — the tailer already applied everything), stamped with the
  //    new epoch, wired for fencing, and the catalog flipped writable.
  journal_ = std::make_unique<catalog::CatalogJournal>(
      store_, options_.journal_options, &metrics_);
  POLARIS_RETURN_IF_ERROR(journal_->PrimeAfterPromotion(watermark));
  journal_->set_epoch(epoch);
  WireFencing();
  catalog_.store()->SetCommitListener(
      [this](const std::vector<catalog::CommitRecord>& records) {
        return journal_->AppendBatch(records);
      });
  sto_.set_catalog_journal(journal_.get());
  if (owned_local_store_ != nullptr) {
    POLARIS_RETURN_IF_ERROR(owned_local_store_->ExitReadOnly());
  }
  catalog_.store()->set_read_only(false);
  POLARIS_CRASH_POINT(common::crash::kPromoteWritable);
  role_.store(EngineRole::kPrimary, std::memory_order_release);
  StartFailoverThread();

  const double promote_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  {
    std::lock_guard<std::mutex> lock(failover_mu_);
    ++promotions_;
    last_promote_ms_ = promote_ms;
    last_promote_tail_records_ = tail_records;
  }
  metrics_.Add("failover.promotions");
  metrics_.Observe("failover.promote_us",
                   static_cast<common::Micros>(promote_ms * 1000.0));
  events_.Emit(obs::EventLevel::kInfo, "failover", "failover.promoted",
               {{"epoch", std::to_string(epoch)},
                {"watermark", std::to_string(watermark)},
                {"tail_records", std::to_string(tail_records)},
                {"sealed_segment", sealed}});
  POLARIS_LOG(kInfo, "failover")
      << "promoted to primary at epoch " << epoch << ": watermark "
      << watermark << ", drained " << tail_records << " tail records in "
      << promote_ms << " ms"
      << (sealed.empty() ? " (no segment to seal)" : ", sealed " + sealed);
  PromoteResult result;
  result.epoch = epoch;
  result.watermark = watermark;
  result.tail_records = tail_records;
  result.promote_ms = promote_ms;
  result.sealed_segment = sealed;
  return result;
}

Status PolarisEngine::EnsureReplicaFresh(common::Micros bound_us) {
  if (bound_us <= 0) return Status::OK();
  if (role() != EngineRole::kReplica) return Status::OK();
  if (replica_tailer_ == nullptr) return Status::OK();
  return replica_tailer_->EnsureFresh(bound_us);
}

FailoverStatus PolarisEngine::GetFailoverStatus() const {
  FailoverStatus fs;
  const EngineRole r = role();
  fs.role = r == EngineRole::kPrimary
                ? "primary"
                : (r == EngineRole::kReplica ? "replica" : "fenced");
  if (lease_ != nullptr) {
    if (r == EngineRole::kReplica) {
      // Report the lease as last observed by the heartbeat (or a live
      // read when no heartbeat runs) — the replica never holds it.
      replica::LeaseInfo info;
      {
        std::lock_guard<std::mutex> lock(failover_mu_);
        info = observed_lease_;
      }
      if (info.epoch == 0) {
        common::Result<replica::LeaseInfo> live = lease_->Read();
        if (live.ok()) info = *live;
      }
      fs.epoch = info.epoch;
      fs.lease_held = false;
      fs.lease_expires_at = info.expires_at;
      fs.lease_owner = info.owner;
    } else {
      fs.epoch = lease_->epoch();
      fs.lease_held = lease_->held();
      fs.lease_expires_at = lease_->expires_at();
      fs.lease_owner = options_.failover.node_name;
      fs.lease_renewals = lease_->renewals();
    }
    fs.lease_remaining_us =
        static_cast<int64_t>(fs.lease_expires_at) -
        static_cast<int64_t>(clock_->Now());
  }
  std::lock_guard<std::mutex> lock(failover_mu_);
  fs.heartbeats = heartbeats_;
  fs.lease_losses = lease_losses_;
  fs.promotions = promotions_;
  fs.last_promote_tail_records = last_promote_tail_records_;
  fs.last_promote_ms = last_promote_ms_;
  fs.fenced = r == EngineRole::kFenced;
  fs.fence_reason = fence_reason_;
  return fs;
}

Status PolarisEngine::CheckpointCatalog() {
  POLARIS_RETURN_IF_ERROR(CheckWritable("CHECKPOINT"));
  if (journal_ == nullptr) {
    return Status::FailedPrecondition("not a durable engine");
  }
  uint64_t seq = 0;
  auto rows = catalog_.store()->ExportLatest(&seq);
  return journal_->WriteCheckpoint(seq, rows);
}

EngineStats PolarisEngine::Stats() {
  EngineStats stats;
  if (owned_store_ != nullptr) stats.store = owned_store_->stats();
  stats.cache = cache_.stats();
  stats.snapshot_cache = builder_.cache_stats();
  stats.active_transactions = txn_manager_.active_transactions();
  stats.catalog_commit_seq = catalog_.LatestCommitSeq();
  stats.catalog_live_keys = catalog_.store()->LiveKeyCount();
  auto txn = catalog_.Begin();
  auto tables = catalog_.ListTables(txn.get());
  catalog_.Abort(txn.get());
  if (tables.ok()) stats.tables = tables->size();
  stats.storage_retries = retry_store_->total_retries();
  stats.injected_faults = fault_store_->injected_failures();
  if (journal_ != nullptr) {
    stats.journal_records = journal_->records_appended();
    stats.journal_checkpoints = journal_->checkpoints_written();
  }
  if (replica_tailer_ != nullptr) {
    replica::ReplicaStatus rs = replica_tailer_->GetStatus();
    stats.replica_watermark = rs.watermark;
    stats.replica_records_applied = rs.records_applied;
  }
  return stats;
}

obs::MetricsSnapshot PolarisEngine::MetricsSnapshot() {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  // Counters kept outside the registry (atomics on their own subsystems)
  // are merged in so one snapshot — and sys.dm_metrics — sees everything.
  snapshot.counters["tracer.dropped_spans"] = tracer_.dropped_spans();
  snapshot.counters["tracer.ring_spans"] = tracer_.size();
  snapshot.counters["storage.injected_faults"] =
      fault_store_->injected_failures();
  snapshot.counters["events.emitted"] = events_.total_emitted();
  snapshot.counters["events.dropped"] = events_.dropped();
  snapshot.counters["storage.injected_latency_micros"] =
      fault_store_->injected_latency_micros();
  snapshot.counters["store.breaker.state"] =
      static_cast<uint64_t>(breaker_store_->state());
  AdmissionController::Stats admission = admission_.stats();
  snapshot.counters["admission.running"] = admission.running;
  snapshot.counters["admission.queued"] = admission.queued;
  snapshot.counters["query_store.recorded.total"] =
      query_store_.recorded_total();
  snapshot.counters["query_store.overflow.total"] =
      query_store_.overflow_total();
  snapshot.counters["query_store.fingerprints"] =
      query_store_.fingerprints();
  if (replica_tailer_ != nullptr) {
    snapshot.counters["replica.watermark"] = replica_tailer_->watermark();
  }
  // Wait-event totals live in their own lock-free registry; synthesizing
  // them here (rather than double-writing the metrics registry on every
  // wait) keeps the blocking paths at one atomic per class.
  common::WaitStats::Snapshot waits = wait_stats_.TakeSnapshot();
  for (int i = 0; i < common::kWaitClassCount; ++i) {
    const auto& cls = waits.classes[i];
    if (cls.count == 0) continue;
    const std::string prefix =
        "waits." + std::string(common::WaitClassName(
                       static_cast<common::WaitClass>(i)));
    snapshot.counters[prefix + ".count"] = cls.count;
    snapshot.counters[prefix + ".us"] = static_cast<uint64_t>(cls.total_us);
    snapshot.counters[prefix + ".max_us"] =
        static_cast<uint64_t>(cls.max_us);
    if (cls.signal_us > 0) {
      snapshot.counters[prefix + ".signal_us"] =
          static_cast<uint64_t>(cls.signal_us);
    }
  }
  return snapshot;
}

Result<std::unique_ptr<txn::Transaction>> PolarisEngine::Begin(
    IsolationMode mode) {
  obs::Span span(&tracer_, "engine.begin");
  return txn_manager_.Begin(mode);
}

Status PolarisEngine::Commit(txn::Transaction* txn) {
  obs::Span span(&tracer_, "engine.commit");
  std::vector<int64_t> dirty = txn->dirty_tables();
  const common::Micros commit_start = clock_->Now();
  Status st = txn_manager_.Commit(txn);
  // Commit-pipeline time is charged win or lose: a conflicting commit
  // spent real pipeline time the statement's vector should show.
  if (auto* usage = common::CurrentResourceUsage()) {
    usage->ChargeCommit(clock_->Now() - commit_start);
  }
  POLARIS_RETURN_IF_ERROR(st);
  // FE notifies STO after each commit (§5.2).
  for (int64_t table_id : dirty) sto_.OnCommit(table_id);
  return Status::OK();
}

Status PolarisEngine::Abort(txn::Transaction* txn) {
  obs::Span span(&tracer_, "engine.abort");
  return txn_manager_.Abort(txn);
}

Status PolarisEngine::KillTransaction(uint64_t txn_id) {
  return txn_manager_.Kill(txn_id);
}

Status PolarisEngine::RunInTransaction(
    const std::function<Status(txn::Transaction*)>& body, IsolationMode mode,
    int max_attempts) {
  Status last = Status::Internal("RunInTransaction: no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    POLARIS_ASSIGN_OR_RETURN(auto txn, Begin(mode));
    Status st = body(txn.get());
    if (!st.ok()) {
      if (!txn->finished()) (void)Abort(txn.get());
      if (st.IsConflict()) {
        last = st;
        if (auto* usage = common::CurrentResourceUsage()) {
          usage->ChargeStatementRetry();
        }
        continue;  // optimistic retry (§3)
      }
      return st;
    }
    st = Commit(txn.get());
    if (st.ok()) return st;
    if (!st.IsConflict()) return st;
    last = st;
    if (auto* usage = common::CurrentResourceUsage()) {
      usage->ChargeStatementRetry();
    }
  }
  return last;
}

Result<TableMeta> PolarisEngine::CreateTable(const std::string& name,
                                             const format::Schema& schema,
                                             const std::string& sort_column) {
  POLARIS_RETURN_IF_ERROR(CheckWritable("CREATE TABLE"));
  TableMeta meta;
  POLARIS_RETURN_IF_ERROR(RunInTransaction([&](txn::Transaction* txn) {
    POLARIS_ASSIGN_OR_RETURN(
        meta, catalog_.CreateTable(txn->catalog_txn(), name, schema,
                                   sort_column));
    return Status::OK();
  }));
  return meta;
}

Status PolarisEngine::DropTable(const std::string& name) {
  POLARIS_RETURN_IF_ERROR(CheckWritable("DROP TABLE"));
  return RunInTransaction([&](txn::Transaction* txn) {
    return catalog_.DropTable(txn->catalog_txn(), name);
  });
}

Result<TableMeta> PolarisEngine::GetTable(const std::string& name) {
  auto txn = catalog_.Begin();
  auto meta = catalog_.GetTableByName(txn.get(), name);
  catalog_.Abort(txn.get());
  return meta;
}

exec::DmlContext PolarisEngine::MakeDmlContext(
    const TableMeta& meta, const std::string& manifest_path) {
  exec::DmlContext ctx;
  ctx.store = store_;
  ctx.cache = &cache_;
  ctx.scheduler = &scheduler_;
  ctx.pool = "write";
  ctx.table_id = meta.table_id;
  ctx.schema = meta.schema;
  ctx.manifest_path = manifest_path;
  ctx.num_cells = options_.num_cells;
  ctx.distribution_column = options_.distribution_column;
  ctx.sort_column = meta.sort_column.empty()
                        ? -1
                        : meta.schema.FindColumn(meta.sort_column);
  ctx.file_options = options_.file_options;
  ctx.cost_scale = options_.cost_scale;
  return ctx;
}

Result<uint64_t> PolarisEngine::Insert(txn::Transaction* txn,
                                       const std::string& table,
                                       const RecordBatch& rows) {
  obs::Span span(&tracer_, "engine.insert");
  if (span.active()) {
    span.AddAttr("table", table);
    span.AddAttr("rows", rows.num_rows());
  }
  POLARIS_RETURN_IF_ERROR(CheckWritable("INSERT"));
  POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("engine.insert"));
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta,
                           catalog_.GetTableByName(txn->catalog_txn(), table));
  POLARIS_ASSIGN_OR_RETURN(std::string manifest_path,
                           txn_manager_.PrepareWrite(txn, meta.table_id));
  exec::DmlContext ctx = MakeDmlContext(meta, manifest_path);
  POLARIS_ASSIGN_OR_RETURN(exec::WriteResult result,
                           exec::InsertExecutor::Run(ctx, rows));
  POLARIS_RETURN_IF_ERROR(
      txn_manager_.FinishInsertStatement(txn, meta.table_id, result));
  return result.rows_affected;
}

Result<uint64_t> PolarisEngine::BulkLoad(
    txn::Transaction* txn, const std::string& table,
    const std::vector<RecordBatch>& sources, dcp::JobMetrics* job) {
  obs::Span span(&tracer_, "engine.bulk_load");
  if (span.active()) {
    span.AddAttr("table", table);
    span.AddAttr("sources", sources.size());
  }
  POLARIS_RETURN_IF_ERROR(CheckWritable("BULK LOAD"));
  POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("engine.bulk_load"));
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta,
                           catalog_.GetTableByName(txn->catalog_txn(), table));
  POLARIS_ASSIGN_OR_RETURN(std::string manifest_path,
                           txn_manager_.PrepareWrite(txn, meta.table_id));
  exec::DmlContext ctx = MakeDmlContext(meta, manifest_path);
  POLARIS_ASSIGN_OR_RETURN(exec::WriteResult result,
                           exec::InsertExecutor::RunSources(ctx, sources));
  POLARIS_RETURN_IF_ERROR(
      txn_manager_.FinishInsertStatement(txn, meta.table_id, result));
  if (job != nullptr) *job = result.job;
  return result.rows_affected;
}

Result<uint64_t> PolarisEngine::Delete(txn::Transaction* txn,
                                       const std::string& table,
                                       const exec::Conjunction& filter) {
  obs::Span span(&tracer_, "engine.delete");
  if (span.active()) span.AddAttr("table", table);
  POLARIS_RETURN_IF_ERROR(CheckWritable("DELETE"));
  POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("engine.delete"));
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta,
                           catalog_.GetTableByName(txn->catalog_txn(), table));
  POLARIS_ASSIGN_OR_RETURN(std::string manifest_path,
                           txn_manager_.PrepareWrite(txn, meta.table_id));
  POLARIS_ASSIGN_OR_RETURN(lst::TableSnapshot snapshot,
                           txn_manager_.GetSnapshot(txn, meta.table_id));
  exec::DmlContext ctx = MakeDmlContext(meta, manifest_path);
  POLARIS_ASSIGN_OR_RETURN(exec::WriteResult result,
                           exec::DeleteExecutor::Run(ctx, snapshot, filter));
  if (result.rows_affected == 0) return uint64_t{0};
  POLARIS_RETURN_IF_ERROR(
      txn_manager_.FinishMutationStatement(txn, meta.table_id, result));
  return result.rows_affected;
}

Result<uint64_t> PolarisEngine::Update(
    txn::Transaction* txn, const std::string& table,
    const exec::Conjunction& filter,
    const std::vector<exec::Assignment>& set) {
  obs::Span span(&tracer_, "engine.update");
  if (span.active()) span.AddAttr("table", table);
  POLARIS_RETURN_IF_ERROR(CheckWritable("UPDATE"));
  POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("engine.update"));
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta,
                           catalog_.GetTableByName(txn->catalog_txn(), table));
  POLARIS_ASSIGN_OR_RETURN(std::string manifest_path,
                           txn_manager_.PrepareWrite(txn, meta.table_id));
  POLARIS_ASSIGN_OR_RETURN(lst::TableSnapshot snapshot,
                           txn_manager_.GetSnapshot(txn, meta.table_id));
  exec::DmlContext ctx = MakeDmlContext(meta, manifest_path);
  POLARIS_ASSIGN_OR_RETURN(
      exec::WriteResult result,
      exec::UpdateExecutor::Run(ctx, snapshot, filter, set));
  if (result.rows_affected == 0) return uint64_t{0};
  POLARIS_RETURN_IF_ERROR(
      txn_manager_.FinishMutationStatement(txn, meta.table_id, result));
  return result.rows_affected;
}

Result<RecordBatch> PolarisEngine::DistributedScan(
    const lst::TableSnapshot& snapshot, const TableMeta& meta,
    const QuerySpec& spec, QueryStats* stats) {
  if (stats != nullptr) stats->cache_before = cache_.stats();

  // Effective scan projection: explicit projection, or — for aggregate
  // queries — the union of group-by and aggregate input columns.
  std::vector<std::string> scan_projection = spec.projection;
  if (!spec.aggregates.empty()) {
    scan_projection = spec.group_by;
    for (const auto& agg : spec.aggregates) {
      if (agg.column.empty()) continue;
      if (std::find(scan_projection.begin(), scan_projection.end(),
                    agg.column) == scan_projection.end()) {
        scan_projection.push_back(agg.column);
      }
    }
    // COUNT(*)-only queries still need at least one physical column.
    if (scan_projection.empty() && meta.schema.num_columns() > 0) {
      scan_projection.push_back(meta.schema.column(0).name);
    }
  }
  // Typed output schema for the scan stage.
  std::vector<format::ColumnDesc> scan_descs;
  if (scan_projection.empty()) {
    scan_descs = meta.schema.columns();
  } else {
    for (const auto& name : scan_projection) {
      int idx = meta.schema.FindColumn(name);
      if (idx < 0) {
        return Status::InvalidArgument("unknown column: " + name);
      }
      scan_descs.push_back(meta.schema.column(idx));
    }
  }

  // One scan task per cell group, on the read pool.
  std::map<uint32_t, lst::TableSnapshot> groups;
  for (const auto& [path, state] : snapshot.files()) {
    (void)path;
    groups[state.info.cell_id].InsertFile(state);
  }
  struct Slot {
    RecordBatch batch;
    exec::ScanMetrics metrics;
  };
  std::vector<Slot> slots(groups.size());
  std::mutex slots_mu;
  dcp::TaskDag dag;
  size_t idx = 0;
  for (auto& [cell, group] : groups) {
    dcp::Task task;
    task.kind = "scan";
    task.cells = {cell};
    for (const auto& [path, state] : group.files()) {
      (void)path;
      task.cost.input_bytes += state.info.byte_size * options_.cost_scale;
      task.cost.rows += state.info.row_count * options_.cost_scale;
      task.cost.files_touched += 1;
    }
    const lst::TableSnapshot* group_ptr = &group;
    size_t my_slot = idx++;
    // Average declared bytes per row in this group, used to convert the
    // scan's *measured* row counts back into cost-model bytes.
    uint64_t bytes_per_row =
        task.cost.rows > 0 ? std::max<uint64_t>(
                                 task.cost.input_bytes / task.cost.rows, 1)
                           : 1;
    task.measured_cost = std::make_shared<dcp::TaskCost>(task.cost);
    auto measured = task.measured_cost;
    task.work = [this, group_ptr, &scan_projection, &spec, &slots, &slots_mu,
                 my_slot, measured,
                 bytes_per_row](const dcp::TaskContext&) -> Status {
      // The deadline rides into the worker via the thread pool's trace
      // binding; a scan task whose statement is already dead (or killed)
      // stops before touching storage.
      POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("scan.task"));
      exec::TableScanner scanner(&cache_, group_ptr);
      exec::ScanOptions options;
      options.projection = scan_projection;
      options.filter = spec.filter;
      exec::ScanMetrics metrics;
      POLARIS_ASSIGN_OR_RETURN(RecordBatch batch,
                               scanner.ScanAll(options, &metrics));
      // Report what the scan actually touched: row groups skipped by zone
      // maps were never read, so selective queries cost less virtual time.
      measured->rows = metrics.rows_read * options_.cost_scale;
      measured->input_bytes =
          metrics.rows_read * bytes_per_row * options_.cost_scale;
      measured->output_bytes =
          metrics.rows_output * bytes_per_row * options_.cost_scale / 4;
      measured->files_touched = static_cast<uint32_t>(metrics.files_scanned);
      std::lock_guard<std::mutex> lock(slots_mu);
      slots[my_slot] = Slot{std::move(batch), metrics};
      return Status::OK();
    };
    dag.Add(std::move(task));
  }

  POLARIS_ASSIGN_OR_RETURN(dcp::JobMetrics job,
                           scheduler_.Run(dag, "read"));

  RecordBatch all{format::Schema(scan_descs)};
  exec::ScanMetrics total_metrics;
  for (auto& slot : slots) {
    if (slot.batch.num_columns() > 0) {
      POLARIS_RETURN_IF_ERROR(all.Append(slot.batch));
    }
    total_metrics.files_scanned += slot.metrics.files_scanned;
    total_metrics.row_groups_read += slot.metrics.row_groups_read;
    total_metrics.row_groups_skipped += slot.metrics.row_groups_skipped;
    total_metrics.rows_read += slot.metrics.rows_read;
    total_metrics.rows_dv_filtered += slot.metrics.rows_dv_filtered;
    total_metrics.rows_output += slot.metrics.rows_output;
  }
  if (stats != nullptr) {
    stats->job = job;
    stats->scan = total_metrics;
    stats->cache_after = cache_.stats();
  }
  if (!spec.aggregates.empty()) {
    return exec::HashAggregate(all, spec.group_by, spec.aggregates);
  }
  return all;
}

Result<RecordBatch> PolarisEngine::Query(txn::Transaction* txn,
                                         const std::string& table,
                                         const QuerySpec& spec,
                                         QueryStats* stats) {
  obs::Span span(&tracer_, "engine.query");
  if (span.active()) span.AddAttr("table", table);
  POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("engine.query"));
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta,
                           catalog_.GetTableByName(txn->catalog_txn(), table));
  POLARIS_ASSIGN_OR_RETURN(lst::TableSnapshot snapshot,
                           txn_manager_.GetSnapshot(txn, meta.table_id));
  return DistributedScan(snapshot, meta, spec, stats);
}

Result<RecordBatch> PolarisEngine::QueryAsOf(txn::Transaction* txn,
                                             const std::string& table,
                                             common::Micros as_of,
                                             const QuerySpec& spec,
                                             QueryStats* stats) {
  obs::Span span(&tracer_, "engine.query_as_of");
  if (span.active()) span.AddAttr("table", table);
  POLARIS_RETURN_IF_ERROR(common::CheckCurrentDeadline("engine.query_as_of"));
  POLARIS_ASSIGN_OR_RETURN(TableMeta meta,
                           catalog_.GetTableByName(txn->catalog_txn(), table));
  POLARIS_ASSIGN_OR_RETURN(
      lst::TableSnapshot snapshot,
      txn_manager_.GetSnapshotAsOf(txn, meta.table_id, as_of));
  return DistributedScan(snapshot, meta, spec, stats);
}

Result<TableMeta> PolarisEngine::CloneTable(
    const std::string& source, const std::string& dest,
    std::optional<common::Micros> as_of) {
  POLARIS_RETURN_IF_ERROR(CheckWritable("CLONE TABLE"));
  // A clone copies only the logical metadata: the dest table plus one
  // Manifests row per source manifest, re-keyed to the new table id
  // (§6.2). The same SI semantics as any transaction guarantee a
  // consistent cut of the source.
  auto txn = catalog_.Begin();
  auto src = catalog_.GetTableByName(txn.get(), source);
  if (!src.ok()) {
    catalog_.Abort(txn.get());
    return src.status();
  }
  auto records =
      as_of.has_value()
          ? catalog_.GetManifestsAsOf(txn.get(), src->table_id, *as_of)
          : catalog_.GetManifests(txn.get(), src->table_id);
  if (!records.ok()) {
    catalog_.Abort(txn.get());
    return records.status();
  }
  auto dest_meta = catalog_.CreateTable(txn.get(), dest, src->schema);
  if (!dest_meta.ok()) {
    catalog_.Abort(txn.get());
    return dest_meta.status();
  }
  std::vector<catalog::PendingManifest> pending;
  pending.reserve(records->size());
  for (const auto& record : *records) {
    pending.push_back({dest_meta->table_id, record.path});
  }
  POLARIS_RETURN_IF_ERROR(catalog_.Commit(txn.get(), pending));
  return *dest_meta;
}

Result<std::string> PolarisEngine::BackupDatabase() {
  // Zero-data-copy backup (§6.3): only the catalog rows are captured; all
  // data/metadata blobs stay where they are in the store.
  auto rows = catalog_.store()->ExportLatest();
  common::ByteWriter out;
  out.PutU32(0x504c4250);  // "PLBP"
  out.PutVarint(rows.size());
  for (const auto& [key, value] : rows) {
    out.PutString(key);
    out.PutString(value);
  }
  return out.Release();
}

Status PolarisEngine::RestoreDatabase(const std::string& image) {
  POLARIS_RETURN_IF_ERROR(CheckWritable("RESTORE"));
  if (txn_manager_.active_transactions() != 0) {
    return Status::FailedPrecondition(
        "cannot restore with active transactions");
  }
  common::ByteReader in(image);
  uint32_t magic;
  POLARIS_RETURN_IF_ERROR(in.GetU32(&magic));
  if (magic != 0x504c4250) return Status::Corruption("bad backup magic");
  uint64_t count;
  POLARIS_RETURN_IF_ERROR(in.GetVarint(&count));
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    std::string value;
    POLARIS_RETURN_IF_ERROR(in.GetString(&key));
    POLARIS_RETURN_IF_ERROR(in.GetString(&value));
    rows.emplace_back(std::move(key), std::move(value));
  }
  if (!in.AtEnd()) return Status::Corruption("trailing backup bytes");
  if (journal_ != nullptr) {
    // Durable restore: the imported state supersedes the whole journal,
    // so persist it as a checkpoint at a fresh sequence *first* (if the
    // write fails, in-memory state is untouched). Replay after the next
    // reopen starts from this checkpoint; older records are skipped.
    uint64_t seq = catalog_.store()->LatestCommitSeq() + 1;
    POLARIS_RETURN_IF_ERROR(journal_->WriteCheckpoint(seq, rows));
    catalog_.store()->ImportSnapshot(rows, seq);
  } else {
    catalog_.store()->ImportSnapshot(rows);
  }
  POLARIS_LOG(kInfo, "engine") << "restored database from backup ("
                               << rows.size() << " catalog rows)";
  return Status::OK();
}

}  // namespace polaris::engine
