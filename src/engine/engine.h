#ifndef POLARIS_ENGINE_ENGINE_H_
#define POLARIS_ENGINE_ENGINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog_db.h"
#include "catalog/catalog_journal.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/wait_stats.h"
#include "dcp/scheduler.h"
#include "engine/admission.h"
#include "exec/aggregate.h"
#include "exec/data_cache.h"
#include "exec/dml.h"
#include "exec/expression.h"
#include "exec/scan.h"
#include "format/column.h"
#include "lst/snapshot_builder.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/query_store.h"
#include "obs/time_series.h"
#include "obs/tracer.h"
#include "replica/failover.h"
#include "replica/replica_tailer.h"
#include "sto/sto.h"
#include "storage/circuit_breaker_store.h"
#include "storage/fault_injection_store.h"
#include "storage/local_file_object_store.h"
#include "storage/memory_object_store.h"
#include "storage/retrying_object_store.h"
#include "txn/transaction_manager.h"

namespace polaris::engine {

class SystemViews;

/// Configuration of a Polaris engine instance.
struct EngineOptions {
  /// Distribution bucket count per table (the d(r) dimension, §2.3).
  uint32_t num_cells = 16;
  /// Column index whose hash distributes rows; -1 = round-robin.
  int distribution_column = 0;
  format::FileWriterOptions file_options;
  txn::TransactionManagerOptions txn_options;
  sto::StoOptions sto_options;
  /// Elastic caps for the WLM pools (0 = unbounded).
  uint32_t read_pool_max_nodes = 0;
  uint32_t write_pool_max_nodes = 0;
  size_t cache_capacity = 4096;
  /// Real worker threads backing the DCP.
  size_t worker_threads = 4;
  /// Virtual-cost multiplier for scaled-down benchmark reproductions
  /// (see exec::DmlContext::cost_scale).
  uint64_t cost_scale = 1;
  /// Fault injection applied between the base store and the retry layer
  /// (the engine always composes base -> FaultInjectionStore ->
  /// RetryingObjectStore; a zero-probability policy is a pass-through).
  storage::FaultPolicy fault_policy;
  uint64_t fault_seed = 42;
  /// Backoff/budget for the storage retry layer.
  storage::RetryPolicy storage_retry;
  /// Circuit breaker on top of the retry layer. `failure_threshold == 0`
  /// leaves the decorator in pass-through mode (default), preserving the
  /// retry-until-exhausted behavior; set a threshold to trip open after
  /// that many consecutive post-retry storage failures.
  storage::CircuitBreakerOptions circuit_breaker{/*failure_threshold=*/0};
  /// Statement admission control (max_concurrent == 0 disables it).
  AdmissionOptions admission;
  /// When non-empty, the engine is durable: blobs live in a
  /// LocalFileObjectStore rooted at this directory and every catalog
  /// commit is journaled there. Use PolarisEngine::Open to construct a
  /// durable engine — it recovers any existing state on reopen.
  std::string data_dir;
  /// Segment/checkpoint cadence for the catalog journal (durable mode).
  catalog::CatalogJournalOptions journal_options;
  /// Period of the background observability sampler thread that feeds
  /// sys.dm_metrics_history and the health watchdog (real time; the
  /// engine's virtual clock only stamps the samples). 0 disables the
  /// thread — tests drive SampleObservabilityOnce() deterministically.
  common::Micros sampler_period_micros = 1'000'000;
  /// Bounded ring capacities for the structured event log and the
  /// per-metric time-series rings.
  size_t event_log_capacity = 4096;
  size_t metrics_history_capacity = 512;
  /// The per-fingerprint workload repository behind sys.query_store
  /// (enabled by default; see obs::QueryStoreOptions).
  obs::QueryStoreOptions query_store;
  /// Wait-event accounting behind sys.dm_wait_stats and the per-statement
  /// wait breakdown. Enabled by default; the < 5% overhead budget is
  /// asserted by bench/micro_txn_contention's A/B gate.
  bool wait_stats_enabled = true;
  /// Watchdog thresholds for the wait-share rule: the largest single wait
  /// class's share of statement wall time over the sample window. A share
  /// past warn means statements mostly wait on one resource (the taxonomy
  /// table in DESIGN.md maps each class to its relieving knob).
  double wait_share_warn = 0.6;
  double wait_share_fail = 0.95;
  /// Opens the database as a read-only replica: the same `data_dir` (or
  /// externally provided store, see PolarisEngine::OpenOn) is attached
  /// read-only, the catalog is bootstrapped from the latest checkpoint +
  /// journal, and a background tailer continuously applies the primary's
  /// journal records. All DML/DDL returns FailedPrecondition; reads are
  /// snapshot-isolated at the replica's apply watermark.
  bool replica = false;
  /// Tailer knobs (poll cadence, catch-up parallelism); replica mode only.
  replica::ReplicaOptions replica_options;
  /// Epoch-lease fencing and promotion knobs (DESIGN.md §12). A durable
  /// primary always claims the lease at open; the background heartbeat
  /// (and with it self-fencing on mere expiry) is off unless
  /// failover.heartbeat_period_micros is set.
  replica::FailoverOptions failover;
};

/// The engine's failover role. A primary that loses its epoch lease (or
/// whose journal append loses its CAS) degrades to kFenced: it keeps
/// serving reads but rejects every write with FailedPrecondition. A
/// replica becomes kPrimary via Promote().
enum class EngineRole { kPrimary, kReplica, kFenced };

/// What a successful Promote() did (sys.dm_failover keeps the last one).
struct PromoteResult {
  uint64_t epoch = 0;      ///< the claimed epoch now stamped on appends
  uint64_t watermark = 0;  ///< commit sequence the new primary starts from
  uint64_t tail_records = 0;  ///< journal records drained during promotion
  double promote_ms = 0;      ///< wall time of the whole promotion
  std::string sealed_segment;  ///< predecessor segment sealed ("" if none)
};

/// Point-in-time failover/lease state, surfaced by sys.dm_failover.
struct FailoverStatus {
  std::string role;  ///< "primary" | "replica" | "fenced"
  uint64_t epoch = 0;
  bool lease_held = false;
  common::Micros lease_expires_at = 0;
  int64_t lease_remaining_us = 0;  ///< negative once expired
  std::string lease_owner;         ///< observed holder (replicas)
  uint64_t lease_renewals = 0;
  uint64_t heartbeats = 0;
  uint64_t lease_losses = 0;
  uint64_t promotions = 0;
  uint64_t last_promote_tail_records = 0;
  double last_promote_ms = 0;
  bool fenced = false;
  std::string fence_reason;
};

/// A query: projection + filter, optionally grouped aggregation. This is
/// the programmatic equivalent of the T-SQL surface: SELECT <projection |
/// aggregates> FROM t WHERE <filter> GROUP BY <group_by>.
struct QuerySpec {
  std::vector<std::string> projection;
  exec::Conjunction filter;
  std::vector<std::string> group_by;
  std::vector<exec::AggSpec> aggregates;
};

/// Per-query observability for the benchmark harness.
struct QueryStats {
  dcp::JobMetrics job;
  exec::ScanMetrics scan;
  exec::DataCache::Stats cache_before;
  exec::DataCache::Stats cache_after;
};

/// Point-in-time aggregate counters across all subsystems — what an
/// operations dashboard for the engine would poll.
struct EngineStats {
  /// Object-store traffic (only available when the engine owns its
  /// MemoryObjectStore; zeroed for externally provided stores).
  storage::StoreStats store;
  exec::DataCache::Stats cache;
  lst::SnapshotBuilder::CacheStats snapshot_cache;
  uint64_t active_transactions = 0;
  uint64_t catalog_commit_seq = 0;
  uint64_t catalog_live_keys = 0;
  uint64_t tables = 0;
  /// Storage-resilience counters (the decorator stack).
  uint64_t storage_retries = 0;
  uint64_t injected_faults = 0;
  /// Durability counters (zero for in-memory engines).
  uint64_t journal_records = 0;
  uint64_t journal_checkpoints = 0;
  /// Replica counters (zero on primaries).
  uint64_t replica_watermark = 0;
  uint64_t replica_records_applied = 0;
};

/// The public facade over the whole system: storage engine, catalog, DCP,
/// transaction manager and STO wired together. One instance == one Fabric
/// DW database.
///
/// All DML/query methods take an explicit transaction. `AutoCommit`
/// convenience wrappers run single-statement transactions with retries on
/// conflict, the way the FE retries user transactions (§3).
class PolarisEngine {
 public:
  /// Creates an engine. If `store`/`clock` are null the engine owns a
  /// MemoryObjectStore / SimClock (virtual time starting at 1s).
  explicit PolarisEngine(EngineOptions options = {},
                         storage::ObjectStore* store = nullptr,
                         common::Clock* clock = nullptr);

  /// Opens a database. For in-memory options this is equivalent to the
  /// constructor; when `options.data_dir` is set it opens (or creates)
  /// the durable database there — loading the latest catalog checkpoint,
  /// replaying the journal tail (a torn final record is dropped), and
  /// wiring every future catalog commit through the journal. Committed
  /// snapshots are readable immediately after Open; staged blobs of
  /// transactions that never committed are invisible and reclaimed.
  static common::Result<std::unique_ptr<PolarisEngine>> Open(
      EngineOptions options = {}, common::Clock* clock = nullptr);

  /// Opens a database on an externally provided object store (tests and
  /// benches sharing one store between a primary and its replicas). With
  /// `options.replica` set the store is attached read-only and tailed;
  /// otherwise this recovers and journals exactly like a durable Open.
  static common::Result<std::unique_ptr<PolarisEngine>> OpenOn(
      EngineOptions options, storage::ObjectStore* store,
      common::Clock* clock = nullptr);

  /// Stops the observability sampler thread before members tear down.
  ~PolarisEngine();

  // Not movable: subsystems hold pointers to each other.
  PolarisEngine(const PolarisEngine&) = delete;
  PolarisEngine& operator=(const PolarisEngine&) = delete;

  // --- Subsystem access (benchmarks, tests) --------------------------------
  common::Clock* clock() { return clock_; }
  /// Top of the storage decorator stack (what every subsystem reads/writes
  /// through): base -> FaultInjectionStore -> RetryingObjectStore ->
  /// CircuitBreakerStore.
  storage::ObjectStore* store() { return store_; }
  /// The fault-injection layer, for tests that flip policies mid-run.
  storage::FaultInjectionStore* fault_store() { return fault_store_.get(); }
  /// The store beneath the decorators (the engine-owned MemoryObjectStore,
  /// or the externally provided base) — for tests inspecting raw blobs.
  storage::ObjectStore* base_store() { return fault_store_->base(); }
  /// The retry layer (retry/exhaustion counters).
  storage::RetryingObjectStore* retry_store() { return retry_store_.get(); }
  /// The circuit breaker on top of the stack (state, fast-fail counters).
  storage::CircuitBreakerStore* circuit_breaker() {
    return breaker_store_.get();
  }
  /// Statement admission control (SqlSession gates through this).
  AdmissionController* admission() { return &admission_; }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  /// The engine-wide span recorder. Disabled by default; enable to capture
  /// traces (see obs::Tracer), export with Tracer::ExportChromeTrace.
  obs::Tracer* tracer() { return &tracer_; }
  catalog::CatalogDb* catalog() { return &catalog_; }
  /// The catalog journal (null for in-memory engines).
  catalog::CatalogJournal* journal() { return journal_.get(); }
  /// What recovery replayed when this durable engine was opened.
  const catalog::CatalogJournal::RecoveredState& recovery_info() const {
    return recovery_;
  }
  /// Current failover role; starts as kReplica/kPrimary per the options
  /// and changes at runtime (Promote, self-fencing).
  EngineRole role() const { return role_.load(std::memory_order_acquire); }
  /// True while this engine serves as a read-only tailing replica.
  bool is_replica() const { return role() == EngineRole::kReplica; }
  /// The epoch lease (null for in-memory engines, which have no journal
  /// and therefore nothing to fence).
  replica::EpochLease* lease() { return lease_.get(); }
  /// The continuous-apply tailer (null on primaries).
  replica::ReplicaTailer* replica() { return replica_tailer_.get(); }
  const replica::ReplicaTailer* replica() const {
    return replica_tailer_.get();
  }
  txn::TransactionManager* txn_manager() { return &txn_manager_; }
  sto::SystemTaskOrchestrator* sto() { return &sto_; }
  exec::DataCache* cache() { return &cache_; }
  dcp::Scheduler* scheduler() { return &scheduler_; }
  dcp::Topology* topology() { return &topology_; }
  const EngineOptions& options() const { return options_; }

  // --- Observability ---------------------------------------------------------
  /// The engine-wide structured event log (sys.dm_events, --log-json).
  obs::EventLog* events() { return &events_; }
  /// Per-metric sample rings fed by the sampler (sys.dm_metrics_history).
  const obs::TimeSeriesRecorder* time_series() const { return &recorder_; }
  /// The SLO watchdog (sys.dm_health).
  const obs::HealthWatchdog* health() const { return &watchdog_; }
  /// The per-fingerprint workload repository (sys.query_store).
  obs::QueryStore* query_store() { return &query_store_; }
  const obs::QueryStore* query_store() const { return &query_store_; }
  /// Engine-wide wait-event totals (sys.dm_wait_stats).
  common::WaitStats* wait_stats() { return &wait_stats_; }
  const common::WaitStats* wait_stats() const { return &wait_stats_; }
  /// The DMV provider behind `SELECT ... FROM sys.<view>`.
  const SystemViews* system_views() const { return views_.get(); }

  /// One sampler tick: snapshots the registry (plus live gauges — active
  /// transactions, STO backlog, tracer/cache occupancy) into the
  /// time-series rings and re-evaluates the health rules. The background
  /// thread calls this every `sampler_period_micros`; tests call it
  /// directly for deterministic histories.
  void SampleObservabilityOnce();

  /// Aggregated subsystem counters (see EngineStats).
  EngineStats Stats();

  /// Point-in-time copy of the unified metrics registry: per-op storage
  /// counts/retries/latencies, cache hits/misses, DCP job metrics, STO
  /// maintenance counters. Bench drivers print this next to their series.
  obs::MetricsSnapshot MetricsSnapshot();

  // --- Transactions ----------------------------------------------------------
  common::Result<std::unique_ptr<txn::Transaction>> Begin(
      catalog::IsolationMode mode = catalog::IsolationMode::kSnapshot);
  common::Status Commit(txn::Transaction* txn);
  common::Status Abort(txn::Transaction* txn);

  /// Requests cooperative cancellation of a live transaction (`KILL
  /// <txn_id>`). The owning statement observes the flip at its next
  /// cancellation point and aborts cleanly; NotFound if no such active
  /// transaction.
  common::Status KillTransaction(uint64_t txn_id);

  /// Runs `body` in a transaction, retrying on Conflict up to
  /// `max_attempts` times (the FE retry loop, §3).
  common::Status RunInTransaction(
      const std::function<common::Status(txn::Transaction*)>& body,
      catalog::IsolationMode mode = catalog::IsolationMode::kSnapshot,
      int max_attempts = 5);

  // --- DDL --------------------------------------------------------------------
  /// `sort_column` (optional) clusters every data file by that column
  /// (the Z-order analogue, §2.3), enabling zone-map range pruning.
  common::Result<catalog::TableMeta> CreateTable(
      const std::string& name, const format::Schema& schema,
      const std::string& sort_column = "");
  common::Status DropTable(const std::string& name);
  common::Result<catalog::TableMeta> GetTable(const std::string& name);

  // --- DML (within a transaction) ----------------------------------------------
  common::Result<uint64_t> Insert(txn::Transaction* txn,
                                  const std::string& table,
                                  const format::RecordBatch& rows);

  /// Bulk load from pre-partitioned source batches (one task per source
  /// file, §7.1). `job` receives the DCP metrics when non-null.
  common::Result<uint64_t> BulkLoad(
      txn::Transaction* txn, const std::string& table,
      const std::vector<format::RecordBatch>& sources,
      dcp::JobMetrics* job = nullptr);

  common::Result<uint64_t> Delete(txn::Transaction* txn,
                                  const std::string& table,
                                  const exec::Conjunction& filter);

  common::Result<uint64_t> Update(txn::Transaction* txn,
                                  const std::string& table,
                                  const exec::Conjunction& filter,
                                  const std::vector<exec::Assignment>& set);

  // --- Queries -------------------------------------------------------------------
  common::Result<format::RecordBatch> Query(txn::Transaction* txn,
                                            const std::string& table,
                                            const QuerySpec& spec,
                                            QueryStats* stats = nullptr);

  /// Time travel (§6.1): the table as of `as_of` on the commit-time axis.
  common::Result<format::RecordBatch> QueryAsOf(txn::Transaction* txn,
                                                const std::string& table,
                                                common::Micros as_of,
                                                const QuerySpec& spec,
                                                QueryStats* stats = nullptr);

  // --- Lineage features (§6) -------------------------------------------------------
  /// Zero-copy clone: duplicates only the logical metadata; both tables
  /// then evolve independently over the shared data files (§6.2).
  common::Result<catalog::TableMeta> CloneTable(
      const std::string& source, const std::string& dest,
      std::optional<common::Micros> as_of = std::nullopt);

  /// Logical-metadata-only backup image of the whole database (§6.3).
  common::Result<std::string> BackupDatabase();

  /// Restores a backup image. Requires no active transactions; data files
  /// are shared with the pre-restore state, and anything unreferenced is
  /// reclaimed by the next GC.
  common::Status RestoreDatabase(const std::string& image);

  /// Durable engines only: writes a catalog checkpoint at the current
  /// commit sequence, bounding the next reopen's journal replay.
  common::Status CheckpointCatalog();

  /// Read-your-writes across the primary/replica boundary: blocks until
  /// this engine's visible commit sequence reaches `seq`, honoring the
  /// ambient deadline/cancellation (`SET WAIT FOR COMMIT <seq>`). On a
  /// primary every committed sequence is already visible, so this returns
  /// immediately.
  common::Status MinReadWatermark(uint64_t seq);

  // --- Failover (DESIGN.md §12) --------------------------------------------
  /// Promotes this replica to primary: CAS-claims epoch+1, stops the
  /// tailer, seals the incumbent's open journal segment (its next append
  /// then loses CAS and self-fences), drains the remaining tail through
  /// the replayer, primes a fresh journal appender at the watermark, and
  /// flips the catalog and local store writable. Serialized against
  /// engine teardown; FailedPrecondition unless currently a replica. A
  /// failure mid-promotion leaves the engine in the crash-point contract
  /// state: discard it and promote a freshly attached replica (which
  /// claims the next epoch).
  common::Result<PromoteResult> Promote();

  /// Degrades a primary to read-only (idempotent; no-op for replicas):
  /// the journal refuses appends, in-flight commit waiters surface
  /// FailedPrecondition("fenced..."), reads keep working. Invoked
  /// automatically when a heartbeat loses the lease CAS or a journal
  /// append is superseded; public so chaos tests and operators can fence
  /// deterministically.
  void Fence(const std::string& reason);

  /// One heartbeat tick (the background thread calls this every
  /// failover.heartbeat_period_micros; tests drive it directly). As
  /// primary: renew the lease, fencing on CAS loss — or, after transient
  /// store errors, once the lease has expired on the engine clock. As
  /// replica: observe the incumbent's lease and, with auto_promote set,
  /// promote once it is observed expired.
  common::Status HeartbeatOnce();

  /// Staleness-bounded reads (SET MAX_STALENESS): OK on primaries; on a
  /// replica, ensures the apply watermark is within `bound_us` of the
  /// journal tip, driving a catch-up poll when it is not. bound_us <= 0
  /// means unbounded.
  common::Status EnsureReplicaFresh(common::Micros bound_us);

  FailoverStatus GetFailoverStatus() const;

 private:
  /// Durable-mode Open half: recover journal state into the catalog and
  /// install the commit listener.
  common::Status RecoverCatalog();

  /// Replica-mode Open half: mark the catalog read-only, bootstrap it
  /// from the shared store's checkpoint + journal, start the tailer.
  common::Status AttachReplica();

  /// FailedPrecondition on replicas; OK on primaries. Every write entry
  /// point checks this before touching storage.
  common::Status CheckWritable(const char* op) const;

  /// Installs the journal's fence guard + listener for the current
  /// journal_ (RecoverCatalog and Promote both call it).
  void WireFencing();
  /// Starts/stops the background heartbeat thread (no-op when the period
  /// is 0 or there is no lease).
  void StartFailoverThread();
  void StopFailoverThread();

  /// Registers the built-in SLO rules on the watchdog (retry rate, retry
  /// exhaustion, journal append p99, STO checkpoint backlog, cache
  /// hit-rate floor, tracer drops).
  void InstallDefaultSloRules();
  /// Starts the background sampler thread (no-op when the period is 0).
  void StartSampler();
  exec::DmlContext MakeDmlContext(const catalog::TableMeta& meta,
                                  const std::string& manifest_path);

  /// Distributed scan through the read pool; returns concatenated batches.
  common::Result<format::RecordBatch> DistributedScan(
      const lst::TableSnapshot& snapshot, const catalog::TableMeta& meta,
      const QuerySpec& spec, QueryStats* stats);

  EngineOptions options_;
  obs::MetricsRegistry metrics_;
  /// Declared before every subsystem that blocks (they hold a pointer to
  /// it); self-contained, so construction order is otherwise free.
  common::WaitStats wait_stats_;
  std::unique_ptr<common::SimClock> owned_clock_;
  common::Clock* clock_;
  /// Default-constructed (no clock): spans measure real wall time via
  /// steady_clock even when the engine itself runs on virtual SimClock
  /// time — profiles and Perfetto timelines stay meaningful.
  obs::Tracer tracer_;
  /// Declared before the subsystems that emit into it (txn manager, STO,
  /// retry store) so it outlives them; stamps events on the engine clock.
  obs::EventLog events_;
  std::unique_ptr<storage::MemoryObjectStore> owned_store_;
  std::unique_ptr<storage::LocalFileObjectStore> owned_local_store_;
  /// Storage decorator stack (§3.2.2 / §4.3): every subsystem reads and
  /// writes through fault injection (chaos) + retry (resilience).
  /// (base -> fault injection -> retry -> circuit breaker; the breaker is
  /// on top so it observes post-retry outcomes).
  std::unique_ptr<storage::FaultInjectionStore> fault_store_;
  std::unique_ptr<storage::RetryingObjectStore> retry_store_;
  std::unique_ptr<storage::CircuitBreakerStore> breaker_store_;
  storage::ObjectStore* store_;
  AdmissionController admission_;
  std::unique_ptr<catalog::CatalogJournal> journal_;
  catalog::CatalogJournal::RecoveredState recovery_;
  catalog::CatalogDb catalog_;
  lst::SnapshotBuilder builder_;
  exec::DataCache cache_;
  dcp::Topology topology_;
  dcp::Scheduler scheduler_;
  txn::TransactionManager txn_manager_;
  sto::SystemTaskOrchestrator sto_;
  obs::QueryStore query_store_;
  /// Replica mode only; declared after catalog_/store decorators (it
  /// reads through both) and stopped first in the destructor.
  std::unique_ptr<replica::ReplicaTailer> replica_tailer_;
  /// Durable-replica side channel for failover writes: the replica's main
  /// store is read-only (so no code path can mutate shared state), but a
  /// lease claim and a segment seal are exactly the two writes promotion
  /// must land *while still a replica*. This second handle on the same
  /// data_dir is made writable without the crash-recovery sweep, so the
  /// live primary's in-flight staged blocks are untouched; generations
  /// live in the blob headers on disk, so its CAS sees — and is seen by —
  /// every other process on the directory.
  std::unique_ptr<storage::LocalFileObjectStore> failover_store_;
  obs::TimeSeriesRecorder recorder_;
  obs::HealthWatchdog watchdog_;
  std::unique_ptr<SystemViews> views_;

  // --- Failover state ------------------------------------------------------
  std::unique_ptr<replica::EpochLease> lease_;
  std::atomic<EngineRole> role_{EngineRole::kPrimary};
  /// Serializes Promote against engine teardown: the destructor sets
  /// shutting_down_ then passes through lifecycle_mu_, so an in-flight
  /// promotion always completes before members tear down and no new one
  /// can start.
  std::mutex lifecycle_mu_;
  std::atomic<bool> shutting_down_{false};
  mutable std::mutex failover_mu_;  // guards the bookkeeping below
  std::string fence_reason_;
  uint64_t heartbeats_ = 0;
  uint64_t lease_losses_ = 0;
  uint64_t promotions_ = 0;
  uint64_t last_promote_tail_records_ = 0;
  double last_promote_ms_ = 0;
  // Last lease observed by a replica heartbeat (dm_failover surface).
  replica::LeaseInfo observed_lease_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;  // guarded by hb_mu_
  std::thread hb_thread_;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;  // guarded by sampler_mu_
  std::thread sampler_thread_;
};

}  // namespace polaris::engine

#endif  // POLARIS_ENGINE_ENGINE_H_
