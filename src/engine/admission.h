#ifndef POLARIS_ENGINE_ADMISSION_H_
#define POLARIS_ENGINE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"
#include "common/wait_stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace polaris::engine {

struct AdmissionOptions {
  /// Statements allowed to run concurrently. 0 = unbounded (admission
  /// control disabled; Admit always succeeds immediately).
  uint32_t max_concurrent = 0;
  /// Statements allowed to wait for a slot. Arrivals beyond
  /// max_concurrent + max_queue are shed immediately.
  uint32_t max_queue = 16;
  /// Longest a statement may wait in the queue (wall time) before being
  /// shed. Bounds worst-case latency instead of queueing forever.
  common::Micros queue_timeout_micros = 1'000'000;
  /// Hint returned with every shed: how long the client should wait
  /// before retrying.
  common::Micros retry_after_micros = 100'000;
};

/// Bounded-concurrency + bounded-queue admission control for SQL
/// statements — the Polaris workload-management inheritance: under a burst
/// the engine runs a fixed number of statements, queues a bounded number
/// more, and sheds the rest with Unavailable + a retry-after hint rather
/// than letting every session pile onto slow storage.
///
/// Queue waits are real (condition-variable) waits measured on wall time,
/// so the queue timeout fires even when the engine runs on virtual time;
/// the waiter also re-checks its statement deadline / KILL token while
/// queued, so a cancelled statement leaves the queue promptly.
class AdmissionController {
 public:
  /// RAII slot: releasing (destruction) wakes the next queued waiter.
  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    void Release() {
      if (controller_ != nullptr) {
        controller_->Release();
        controller_ = nullptr;
      }
    }

   private:
    AdmissionController* controller_ = nullptr;
  };

  struct Stats {
    uint32_t max_concurrent = 0;
    uint32_t max_queue = 0;
    uint32_t running = 0;
    uint32_t queued = 0;
    uint64_t admitted_total = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_queue_timeout = 0;
    uint64_t cancelled_in_queue = 0;
    uint64_t queue_wait_micros_total = 0;
  };

  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_event_log(obs::EventLog* events) { events_ = events; }
  /// Attaches the wait-event registry (may be null); queue waits are then
  /// recorded as ADMISSION_QUEUE. The charged interval is the same wall
  /// measurement ChargeQueue sees, so queue_us and the ADMISSION_QUEUE
  /// wait agree per statement.
  void set_wait_stats(common::WaitStats* waits) { wait_stats_ = waits; }

  bool enabled() const { return options_.max_concurrent > 0; }
  const AdmissionOptions& options() const { return options_; }

  /// Blocks until a slot is free (bounded by the queue timeout and by
  /// `deadline`), returning a Ticket, or fails with:
  ///   Unavailable       — queue full or queue timeout (sheds carry a
  ///                       "retry after <n>us" hint and emit
  ///                       statement.shed),
  ///   DeadlineExceeded / Cancelled — the statement's own budget died
  ///                       while queued.
  /// `what` names the statement kind for events/errors.
  common::Result<Ticket> Admit(const common::Deadline& deadline,
                               std::string_view what);

  Stats stats() const;

 private:
  friend class Ticket;
  void Release();

  common::Status Shed(const char* cause, std::string_view what,
                      uint64_t* counter);

  AdmissionOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLog* events_ = nullptr;
  common::WaitStats* wait_stats_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  uint32_t running_ = 0;  // guarded by mu_
  uint32_t queued_ = 0;   // guarded by mu_
  uint64_t admitted_total_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_queue_timeout_ = 0;
  uint64_t cancelled_in_queue_ = 0;
  uint64_t queue_wait_micros_total_ = 0;
};

}  // namespace polaris::engine

#endif  // POLARIS_ENGINE_ADMISSION_H_
