#ifndef POLARIS_ENGINE_SYSTEM_VIEWS_H_
#define POLARIS_ENGINE_SYSTEM_VIEWS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"

namespace polaris::engine {

class PolarisEngine;

/// The DMV provider: materializes `sys.*` system views from live engine
/// state (SQL Server dm_* style). Each view is produced as an ordinary
/// RecordBatch, so the SQL layer composes WHERE / ORDER BY / LIMIT /
/// aggregates over it through the normal executor — system views are just
/// virtual tables whose rows are computed at query time.
///
/// Catalog (see DESIGN.md §6):
///   sys.dm_tran_active     in-flight transactions
///   sys.dm_tran_history    recently finished transactions (bounded ring)
///   sys.dm_storage_stats   per-operation object-store traffic + faults
///   sys.dm_sto_jobs        STO maintenance job history (bounded ring)
///   sys.dm_cache           data-cache counters and occupancy
///   sys.dm_metrics         unified metrics registry with p50/p95/p99
///   sys.dm_metrics_history time-series sampler rings (name, ts, value)
///   sys.dm_events          structured event log tail
///   sys.dm_health          SLO watchdog verdicts
///   sys.dm_admission       admission-control occupancy and shed counters
///   sys.dm_commit          catalog group-commit pipeline counters
///   sys.dm_wait_stats      engine-wide wait-event totals per class
///   sys.dm_replica         replica apply watermark, lag, tailer counters
///   sys.dm_failover        role, epoch lease, fencing and promotion state
///   sys.dm_views           this catalog
///   sys.query_store        per-fingerprint workload repository (Query Store)
///   sys.query_store_intervals
///                          per-fingerprint interval-bucketed Query Store
///                          stats (newest interval first)
class SystemViews {
 public:
  /// `engine` must outlive this object.
  explicit SystemViews(PolarisEngine* engine) : engine_(engine) {}

  /// True when `table` names a system view namespace member ("sys." prefix,
  /// case-sensitive — system views are lowercase identifiers).
  static bool IsSystemTable(const std::string& table);

  /// All view names (without the "sys." prefix) with one-line descriptions.
  static const std::vector<std::pair<std::string, std::string>>& Catalog();

  /// Materializes the full contents of view `table` ("sys.dm_..."); the
  /// caller applies filtering/ordering/limits. NotFound for unknown views.
  common::Result<format::RecordBatch> Query(const std::string& table) const;

 private:
  format::RecordBatch TranActive() const;
  format::RecordBatch TranHistory() const;
  format::RecordBatch StorageStats() const;
  format::RecordBatch StoJobs() const;
  format::RecordBatch Cache() const;
  format::RecordBatch Metrics() const;
  format::RecordBatch MetricsHistory() const;
  format::RecordBatch Events() const;
  format::RecordBatch Health() const;
  format::RecordBatch Admission() const;
  format::RecordBatch Commit() const;
  format::RecordBatch WaitStatsView() const;
  format::RecordBatch Replica() const;
  format::RecordBatch Failover() const;
  format::RecordBatch Views() const;
  format::RecordBatch QueryStoreView() const;
  format::RecordBatch QueryStoreIntervals() const;

  PolarisEngine* engine_;
};

}  // namespace polaris::engine

#endif  // POLARIS_ENGINE_SYSTEM_VIEWS_H_
