// Interactive SQL shell over a PolarisEngine: type statements terminated
// by ';'. Also usable non-interactively:
//
//   $ echo "CREATE TABLE t (x BIGINT); INSERT INTO t VALUES (1); \
//           SELECT * FROM t;" | ./build/examples/sql_shell
//
// Set POLARIS_FAULT_P=<probability> to inject transient storage faults on
// every read and write (absorbed by the engine's retry layer).
//
// By default the database lives in memory and vanishes on exit. Pass
// --data-dir <path> to open (or create) a durable database there:
// committed transactions survive restarts and are recovered on open.
//
// Pass --replica together with --data-dir to attach to that database as a
// read-only replica: the shell bootstraps from the primary's checkpoint +
// journal and continuously applies new commits, so SELECTs see the
// primary's writes with bounded lag (watch SELECT * FROM sys.dm_replica;).
// DML/DDL is rejected; SET WAIT FOR COMMIT <seq>; blocks until the
// primary's commit <seq> is visible (read-your-writes).
//
// Shell meta-commands (each terminated by ';'):
//   METRICS            dump the unified metrics registry in Prometheus
//                      text exposition format (same renderer a scrape
//                      endpoint would use)
//   HEALTH             SLO watchdog verdicts (SELECT * FROM sys.dm_health)
//   EVENTS DUMP <file> export the structured event log as JSON lines
//   TRACE ON | OFF     enable/disable the engine span recorder
//   TRACE DUMP <file>  export recorded spans as Chrome/Perfetto JSON
//                      (open in https://ui.perfetto.dev)
//   QUERYSTORE TOP <n> heaviest statement fingerprints by total wall time
//                      (shorthand for a sys.query_store SELECT)
//   WAITS [TOP <n>]    engine-wide wait-event totals by class, heaviest
//                      first (shorthand for a sys.dm_wait_stats SELECT)
//
// Pass --log-json <file> to stream every structured event to <file> as
// JSON lines while the shell runs; on exit the shell emits one
// shell.wait_summary event with the session's per-class wait totals.
//
// EXPLAIN ANALYZE <statement> prints the statement's span tree. System
// views are queryable like tables: SELECT * FROM sys.dm_views; lists them.
//
// SET DEADLINE <ms>; gives every subsequent statement a time budget (0
// disables it); KILL <txn_id>; cancels a running transaction — find ids
// with SELECT * FROM sys.dm_tran_active;.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/engine.h"
#include "sql/session.h"

using polaris::engine::PolarisEngine;
using polaris::sql::SqlResult;
using polaris::sql::SqlSession;

namespace {

void PrintResult(const SqlResult& result) {
  const auto& batch = result.batch;
  if (batch.num_columns() > 0) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::printf("%-18s", batch.schema().column(c).name.c_str());
    }
    std::printf("\n");
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::printf("%-18s", "----------------");
    }
    std::printf("\n");
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        std::printf("%-18s", batch.column(c).ValueAt(r).ToString().c_str());
      }
      std::printf("\n");
    }
  }
  if (!result.message.empty()) {
    std::printf("%s\n", result.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  polaris::engine::EngineOptions options;
  std::string log_json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      options.data_dir = argv[++i];
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      options.data_dir = arg.substr(std::string("--data-dir=").size());
    } else if (arg == "--log-json" && i + 1 < argc) {
      log_json_path = argv[++i];
    } else if (arg.rfind("--log-json=", 0) == 0) {
      log_json_path = arg.substr(std::string("--log-json=").size());
    } else if (arg == "--replica") {
      options.replica = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--data-dir <path>] [--replica] "
                   "[--log-json <file>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.replica && options.data_dir.empty()) {
    std::fprintf(stderr, "--replica needs --data-dir <path> (the primary's "
                         "database directory)\n");
    return 2;
  }
  if (const char* fault_p = std::getenv("POLARIS_FAULT_P")) {
    double p = std::atof(fault_p);
    options.fault_policy.read_failure_probability = p;
    options.fault_policy.write_failure_probability = p;
    std::fprintf(stderr, "[fault injection: p=%.3f on reads and writes]\n",
                 p);
  }
  auto opened = PolarisEngine::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open database: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  PolarisEngine& engine = **opened;
  if (!log_json_path.empty()) {
    auto st = engine.events()->OpenJsonSink(log_json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot open event sink: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[structured events -> %s]\n",
                 log_json_path.c_str());
  }
  SqlSession session(&engine);
  bool interactive = isatty(fileno(stdin));

  if (interactive) {
    std::printf(
        "polaris-tx SQL shell. Statements end with ';'. Ctrl-D to exit.\n"
        "Dialect: CREATE/DROP/CLONE TABLE, INSERT, SELECT [AS OF], UPDATE,"
        " DELETE,\n         BEGIN/COMMIT/ROLLBACK.\n"
        "Overload: SET DEADLINE <ms> caps every later statement (0 turns it"
        " off);\n         KILL <txn_id> cancels a transaction (ids in "
        "sys.dm_tran_active).\n"
        "System views: SELECT * FROM sys.dm_views;   Meta: METRICS, "
        "HEALTH,\n         TRACE ON|OFF|DUMP <file>, EVENTS DUMP <file>, "
        "QUERYSTORE TOP <n>,\n         WAITS [TOP <n>].\n\n");
    if (options.replica) {
      auto status = engine.replica()->GetStatus();
      std::printf(
          "read-only replica of %s (watermark %llu, bootstrap replayed "
          "%llu records)\nwrites are rejected; SET WAIT FOR COMMIT <seq>; "
          "waits for a primary commit;\nSET MAX_STALENESS <ms>; bounds read "
          "staleness; PROMOTE; takes over as primary\n(fencing the old one "
          "-- see sys.dm_failover)\n\n",
          options.data_dir.c_str(),
          static_cast<unsigned long long>(status.watermark),
          static_cast<unsigned long long>(status.bootstrap_records));
    } else if (!options.data_dir.empty()) {
      const auto& recovery = engine.recovery_info();
      std::printf(
          "durable database at %s (checkpoint seq %llu, %llu journal "
          "records replayed)\n\n",
          options.data_dir.c_str(),
          static_cast<unsigned long long>(recovery.checkpoint_seq),
          static_cast<unsigned long long>(recovery.records_replayed));
    }
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      std::printf(session.in_transaction() ? "txn> " : "sql> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    buffer += line;
    buffer += '\n';
    // Execute every complete (';'-terminated) statement in the buffer.
    size_t semi;
    while ((semi = buffer.find(';')) != std::string::npos) {
      std::string statement = buffer.substr(0, semi + 1);
      buffer.erase(0, semi + 1);
      // Skip empty statements.
      bool blank = true;
      for (char c : statement) {
        if (!std::isspace(static_cast<unsigned char>(c)) && c != ';') {
          blank = false;
          break;
        }
      }
      if (blank) continue;
      // Shell meta-command: dump the unified metrics registry.
      std::string word;
      for (char c : statement) {
        if (std::isalpha(static_cast<unsigned char>(c))) {
          word += static_cast<char>(std::toupper(c));
        } else if (!word.empty()) {
          break;
        }
      }
      if (word == "METRICS") {
        // One code path for humans and scrapers: the Prometheus renderer.
        std::fputs(engine.MetricsSnapshot().ToPrometheusText().c_str(),
                   stdout);
        continue;
      }
      if (word == "HEALTH") {
        auto health = session.Execute("SELECT * FROM sys.dm_health;");
        if (health.ok()) {
          PrintResult(*health);
        } else {
          std::printf("ERROR: %s\n", health.status().ToString().c_str());
        }
        continue;
      }
      if (word == "EVENTS") {
        // EVENTS DUMP <file>
        std::istringstream parts(statement);
        std::string cmd, sub, arg;
        parts >> cmd >> sub;
        std::getline(parts, arg);
        while (!arg.empty() &&
               (std::isspace(static_cast<unsigned char>(arg.back())) ||
                arg.back() == ';')) {
          arg.pop_back();
        }
        while (!arg.empty() &&
               std::isspace(static_cast<unsigned char>(arg.front()))) {
          arg.erase(arg.begin());
        }
        for (char& c : sub) c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
        if (!sub.empty() && sub.back() == ';') sub.pop_back();
        if (sub == "DUMP" && !arg.empty()) {
          std::ofstream out(arg, std::ios::trunc);
          if (!out) {
            std::printf("ERROR: cannot open %s\n", arg.c_str());
            continue;
          }
          out << engine.events()->ToJsonLines();
          std::printf("EVENTS DUMP %s (%zu events, %llu dropped)\n",
                      arg.c_str(), engine.events()->size(),
                      static_cast<unsigned long long>(
                          engine.events()->dropped()));
        } else {
          std::printf("ERROR: usage: EVENTS DUMP <file>\n");
        }
        continue;
      }
      if (word == "TRACE") {
        // TRACE ON | TRACE OFF | TRACE DUMP <file>
        std::istringstream parts(statement);
        std::string cmd, sub, arg;
        parts >> cmd >> sub;
        std::getline(parts, arg);
        while (!arg.empty() &&
               (std::isspace(static_cast<unsigned char>(arg.back())) ||
                arg.back() == ';')) {
          arg.pop_back();
        }
        while (!arg.empty() &&
               std::isspace(static_cast<unsigned char>(arg.front()))) {
          arg.erase(arg.begin());
        }
        for (char& c : sub) c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
        if (!sub.empty() && sub.back() == ';') sub.pop_back();
        if (sub == "ON") {
          engine.tracer()->set_enabled(true);
          std::printf("TRACE ON\n");
        } else if (sub == "OFF") {
          engine.tracer()->set_enabled(false);
          std::printf("TRACE OFF\n");
        } else if (sub == "DUMP") {
          if (arg.empty()) {
            std::printf("ERROR: TRACE DUMP needs a file name\n");
            continue;
          }
          std::ofstream out(arg, std::ios::trunc);
          if (!out) {
            std::printf("ERROR: cannot open %s\n", arg.c_str());
            continue;
          }
          out << engine.tracer()->ExportChromeTrace();
          std::printf("TRACE DUMP %s (%zu spans, %llu dropped)\n",
                      arg.c_str(), engine.tracer()->Snapshot().size(),
                      static_cast<unsigned long long>(
                          engine.tracer()->dropped_spans()));
        } else {
          std::printf("ERROR: usage: TRACE ON | TRACE OFF | TRACE DUMP "
                      "<file>\n");
        }
        continue;
      }
      if (word == "QUERYSTORE") {
        // QUERYSTORE TOP <n>
        std::istringstream parts(statement);
        std::string cmd, sub, arg;
        parts >> cmd >> sub >> arg;
        for (char& c : sub) c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
        while (!arg.empty() &&
               (arg.back() == ';' ||
                std::isspace(static_cast<unsigned char>(arg.back())))) {
          arg.pop_back();
        }
        long n = arg.empty() ? 0 : std::strtol(arg.c_str(), nullptr, 10);
        if (sub != "TOP" || n <= 0) {
          std::printf("ERROR: usage: QUERYSTORE TOP <n>\n");
          continue;
        }
        auto top = session.Execute(
            "SELECT fingerprint, kind, executions, wall_p50_us, wall_p99_us, "
            "total_wall_us, errors FROM sys.query_store ORDER BY "
            "total_wall_us DESC LIMIT " +
            std::to_string(n) + ";");
        if (top.ok()) {
          PrintResult(*top);
        } else {
          std::printf("ERROR: %s\n", top.status().ToString().c_str());
        }
        continue;
      }
      if (word == "WAITS") {
        // WAITS | WAITS TOP <n>
        std::istringstream parts(statement);
        std::string cmd, sub, arg;
        parts >> cmd >> sub >> arg;
        for (char& c : sub) c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
        if (!sub.empty() && sub.back() == ';') sub.pop_back();
        while (!arg.empty() &&
               (arg.back() == ';' ||
                std::isspace(static_cast<unsigned char>(arg.back())))) {
          arg.pop_back();
        }
        long n = arg.empty() ? 0 : std::strtol(arg.c_str(), nullptr, 10);
        if (!sub.empty() && (sub != "TOP" || n <= 0)) {
          std::printf("ERROR: usage: WAITS [TOP <n>]\n");
          continue;
        }
        std::string query =
            "SELECT wait_class, waits, wait_us, max_wait_us, signal_us "
            "FROM sys.dm_wait_stats ORDER BY wait_us DESC";
        if (n > 0) query += " LIMIT " + std::to_string(n);
        auto waits = session.Execute(query + ";");
        if (waits.ok()) {
          PrintResult(*waits);
        } else {
          std::printf("ERROR: %s\n", waits.status().ToString().c_str());
        }
        continue;
      }
      auto result = session.Execute(statement);
      if (result.ok()) {
        PrintResult(*result);
      } else {
        std::printf("ERROR: %s\n", result.status().ToString().c_str());
      }
    }
  }
  if (!log_json_path.empty()) {
    // One terminal event carrying the session's wait profile, so a
    // --log-json artifact is self-describing about where time blocked.
    polaris::common::WaitStats::Snapshot waits =
        engine.wait_stats()->TakeSnapshot();
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("total_wait_us", std::to_string(waits.total_us()));
    for (int i = 0; i < polaris::common::kWaitClassCount; ++i) {
      if (waits.classes[i].count == 0) continue;
      fields.emplace_back(
          std::string(polaris::common::WaitClassName(
              static_cast<polaris::common::WaitClass>(i))),
          std::to_string(waits.classes[i].total_us) + "us/" +
              std::to_string(waits.classes[i].count));
    }
    engine.events()->Emit(polaris::obs::EventLevel::kInfo, "shell",
                          "shell.wait_summary", fields);
  }
  if (interactive) std::printf("\nbye\n");
  return 0;
}
