// Data-lineage features (paper §6): Query-As-Of time travel, zero-copy
// table clones, and logical-metadata-only backup/restore.
//
//   $ ./build/examples/time_travel_clone

#include <cstdio>

#include "engine/engine.h"
#include "storage/memory_object_store.h"

using polaris::common::Micros;
using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;
using polaris::exec::AggFunc;
using polaris::exec::CompareOp;
using polaris::exec::Conjunction;
using polaris::exec::Predicate;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (false)

Schema EventsSchema() {
  return Schema({{"day", ColumnType::kInt64},
                 {"clicks", ColumnType::kInt64}});
}

int64_t TotalClicks(PolarisEngine& engine, const std::string& table,
                    Micros as_of = 0) {
  auto txn = engine.Begin();
  if (!txn.ok()) return -1;
  QuerySpec spec;
  spec.aggregates = {{AggFunc::kSum, "clicks", "total"}};
  auto result = as_of == 0
                    ? engine.Query(txn->get(), table, spec)
                    : engine.QueryAsOf(txn->get(), table, as_of, spec);
  (void)engine.Abort(txn->get());
  if (!result.ok() || result->column(0).IsNull(0)) return 0;
  return result->column(0).Int64At(0);
}

}  // namespace

int main() {
  PolarisEngine engine;
  CHECK_OK(engine.CreateTable("events", EventsSchema()).status());

  // Day 1: 100 clicks.
  CHECK_OK(engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    RecordBatch batch{EventsSchema()};
    (void)batch.AppendRow({Value::Int64(1), Value::Int64(100)});
    return engine.Insert(txn, "events", batch).status();
  }));
  Micros day1 = engine.clock()->Now();
  engine.clock()->Advance(24LL * 3600 * 1'000'000);  // +1 virtual day

  // Day 2: 250 more clicks arrive; day-1 row is corrected down to 90.
  CHECK_OK(engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    RecordBatch batch{EventsSchema()};
    (void)batch.AppendRow({Value::Int64(2), Value::Int64(250)});
    POLARIS_RETURN_IF_ERROR(engine.Insert(txn, "events", batch).status());
    Conjunction day1_filter;
    day1_filter.predicates.push_back(
        Predicate::Make("day", CompareOp::kEq, Value::Int64(1)));
    std::vector<polaris::exec::Assignment> fix = {
        {"clicks", polaris::exec::Assignment::Kind::kAddInt64,
         Value::Int64(-10)}};
    return engine.Update(txn, "events", day1_filter, fix).status();
  }));

  std::printf("current total clicks:        %ld (expect 340)\n",
              static_cast<long>(TotalClicks(engine, "events")));
  std::printf("QUERY AS OF day 1:           %ld (expect 100)\n",
              static_cast<long>(TotalClicks(engine, "events", day1)));

  // --- Zero-copy clone (§6.2) -------------------------------------------
  // stats() lives on the concrete in-memory store at the bottom of the
  // engine's decorator stack (store() returns the retry/fault wrappers).
  auto* store = static_cast<polaris::storage::MemoryObjectStore*>(
      engine.base_store());
  uint64_t bytes_before = store->stats().bytes_written;
  CHECK_OK(engine.CloneTable("events", "events_day1", day1).status());
  CHECK_OK(engine.CloneTable("events", "events_now").status());
  uint64_t bytes_after = store->stats().bytes_written;
  std::printf("\nCLONE 'events_day1' AS OF day 1 and 'events_now':\n");
  std::printf("  bytes of data copied by the clones: %lu (expect 0)\n",
              static_cast<unsigned long>(bytes_after - bytes_before));
  std::printf("  clone 'events_day1' total:   %ld (expect 100)\n",
              static_cast<long>(TotalClicks(engine, "events_day1")));
  std::printf("  clone 'events_now' total:    %ld (expect 340)\n",
              static_cast<long>(TotalClicks(engine, "events_now")));

  // Clones evolve independently.
  CHECK_OK(engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    RecordBatch batch{EventsSchema()};
    (void)batch.AppendRow({Value::Int64(3), Value::Int64(7)});
    return engine.Insert(txn, "events_now", batch).status();
  }));
  std::printf("  after insert into clone:     clone=%ld source=%ld\n",
              static_cast<long>(TotalClicks(engine, "events_now")),
              static_cast<long>(TotalClicks(engine, "events")));

  // --- Backup / restore (§6.3) -------------------------------------------
  auto image = engine.BackupDatabase();
  CHECK_OK(image.status());
  std::printf("\nBACKUP image size: %zu bytes (logical metadata only)\n",
              image->size());
  CHECK_OK(engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    return engine.Delete(txn, "events", Conjunction{}).status();
  }));
  std::printf("after DELETE all:            %ld\n",
              static_cast<long>(TotalClicks(engine, "events")));
  CHECK_OK(engine.RestoreDatabase(*image));
  std::printf("after RESTORE:               %ld (expect 340)\n",
              static_cast<long>(TotalClicks(engine, "events")));

  std::printf("\ntime-travel / clone / backup demo finished OK\n");
  return 0;
}
