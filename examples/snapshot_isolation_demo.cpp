// Replays the worked example of Figure 6 (paper §4.2): transactions X1-X4
// over table T1(C1, C2), demonstrating Snapshot Isolation, optimistic
// write-write conflict detection and rollback.
//
//   $ ./build/examples/snapshot_isolation_demo

#include <cstdio>

#include "engine/engine.h"

using polaris::common::Status;
using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;
using polaris::exec::AggFunc;
using polaris::exec::CompareOp;
using polaris::exec::Conjunction;
using polaris::exec::Predicate;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;
using polaris::txn::Transaction;

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (false)

Schema T1Schema() {
  return Schema({{"C1", ColumnType::kString}, {"C2", ColumnType::kInt64}});
}

RecordBatch Rows(std::vector<std::pair<std::string, int64_t>> rows) {
  RecordBatch batch{T1Schema()};
  for (auto& [c1, c2] : rows) {
    (void)batch.AppendRow({Value::String(c1), Value::Int64(c2)});
  }
  return batch;
}

int64_t SumC2(PolarisEngine& engine, Transaction* txn) {
  QuerySpec spec;
  spec.aggregates = {{AggFunc::kSum, "C2", "sum"}};
  auto result = engine.Query(txn, "T1", spec);
  if (!result.ok() || result->column(0).IsNull(0)) return 0;
  return result->column(0).Int64At(0);
}

Conjunction WhereC1(const std::string& v) {
  Conjunction conj;
  conj.predicates.push_back(
      Predicate::Make("C1", CompareOp::kEq, Value::String(v)));
  return conj;
}

}  // namespace

int main() {
  PolarisEngine engine;
  CHECK_OK(engine.CreateTable("T1", T1Schema()).status());

  std::printf("== t1: X1 loads (A,1), (B,2), (C,3) and commits ==\n");
  {
    auto x1 = engine.Begin();
    CHECK_OK(x1.status());
    CHECK_OK(
        engine.Insert(x1->get(), "T1", Rows({{"A", 1}, {"B", 2}, {"C", 3}}))
            .status());
    CHECK_OK(engine.Commit(x1->get()));
  }
  engine.clock()->Advance(1000);

  std::printf("== t2: X2 and X3 start ==\n");
  auto x2 = engine.Begin();
  auto x3 = engine.Begin();
  CHECK_OK(x2.status());
  CHECK_OK(x3.status());

  std::printf("   X2: INSERT (D,4), (E,5); DELETE WHERE C1='A'\n");
  CHECK_OK(engine.Insert(x2->get(), "T1", Rows({{"D", 4}, {"E", 5}}))
               .status());
  CHECK_OK(engine.Delete(x2->get(), "T1", WhereC1("A")).status());
  std::printf("   X2 sees its own changes:     SUM(C2) = %ld (expect 14)\n",
              static_cast<long>(SumC2(engine, x2->get())));
  std::printf("   X3 reads under SI:           SUM(C2) = %ld (expect 6)\n",
              static_cast<long>(SumC2(engine, x3->get())));

  engine.clock()->Advance(1000);
  std::printf("== t3: X2 commits; X3 deletes (B,2) without blocking ==\n");
  CHECK_OK(engine.Commit(x2->get()));
  std::printf("   X3 snapshot is unchanged:    SUM(C2) = %ld (expect 6)\n",
              static_cast<long>(SumC2(engine, x3->get())));
  CHECK_OK(engine.Delete(x3->get(), "T1", WhereC1("B")).status());

  engine.clock()->Advance(1000);
  std::printf("== t4: X3 attempts to commit ==\n");
  Status commit_status = engine.Commit(x3->get());
  std::printf("   X3 commit result: %s (expect Conflict -> rollback)\n",
              commit_status.ToString().c_str());
  if (!commit_status.IsConflict()) {
    std::fprintf(stderr, "expected a write-write conflict!\n");
    return 1;
  }

  std::printf("== t4: X4 starts and reads ==\n");
  {
    auto x4 = engine.Begin();
    CHECK_OK(x4.status());
    std::printf("   X4 sees X1+X2 effects:       SUM(C2) = %ld (expect 14)\n",
                static_cast<long>(SumC2(engine, x4->get())));
    CHECK_OK(engine.Abort(x4->get()));
  }

  std::printf("\nFigure 6 semantics reproduced: reads never blocked, "
              "inserts never conflicted,\nand the conflicting delete was "
              "rolled back by first-committer-wins validation.\n");
  return 0;
}
