// Concurrent ETL and reporting (paper §4.3 / §7.2): a bulk load runs on
// the write pool while reporting queries run on the read pool. Snapshot
// Isolation keeps every query consistent; node failures injected into the
// load are absorbed by task-level retries.
//
//   $ ./build/examples/concurrent_etl

#include <cstdio>
#include <thread>

#include "engine/engine.h"

using polaris::common::Status;
using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;
using polaris::exec::AggFunc;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (false)

Schema SalesSchema() {
  return Schema({{"sale_id", ColumnType::kInt64},
                 {"region", ColumnType::kString},
                 {"revenue", ColumnType::kDouble}});
}

RecordBatch MakeSales(int n, int offset) {
  const char* regions[] = {"emea", "amer", "apac"};
  RecordBatch batch{SalesSchema()};
  for (int i = 0; i < n; ++i) {
    int id = offset + i;
    (void)batch.AppendRow({Value::Int64(id), Value::String(regions[id % 3]),
                           Value::Double(100.0)});
  }
  return batch;
}

}  // namespace

int main() {
  polaris::engine::EngineOptions options;
  options.num_cells = 8;
  options.worker_threads = 4;
  PolarisEngine engine(options);
  CHECK_OK(engine.CreateTable("sales", SalesSchema()).status());

  // Seed data so reports have something to read from the start.
  CHECK_OK(engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    return engine.Insert(txn, "sales", MakeSales(3000, 0)).status();
  }));

  // Inject node failures into the compute fabric: ETL tasks will be
  // retried transparently (paper §4.3 "Resilience to Compute Failures").
  polaris::dcp::TaskFailurePolicy failures;
  failures.failure_probability = 0.15;
  failures.after_work = true;
  engine.scheduler()->set_failure_policy(failures);

  std::printf("starting concurrent ETL (write pool) + reporting (read pool)\n\n");

  std::thread etl([&engine] {
    for (int batch_no = 1; batch_no <= 5; ++batch_no) {
      Status st = engine.RunInTransaction(
          [&](polaris::txn::Transaction* txn) {
            // Multi-statement ETL transaction: two loads commit atomically.
            POLARIS_RETURN_IF_ERROR(
                engine.Insert(txn, "sales", MakeSales(1500, batch_no * 10000))
                    .status());
            return engine
                .Insert(txn, "sales", MakeSales(1500, batch_no * 10000 + 5000))
                .status();
          });
      if (!st.ok()) {
        std::fprintf(stderr, "ETL batch %d failed: %s\n", batch_no,
                     st.ToString().c_str());
        return;
      }
      std::printf("[etl]    batch %d committed (3000 rows)\n", batch_no);
    }
  });

  std::thread reporting([&engine] {
    for (int q = 1; q <= 8; ++q) {
      auto txn = engine.Begin();
      if (!txn.ok()) return;
      QuerySpec spec;
      spec.group_by = {"region"};
      spec.aggregates = {{AggFunc::kCount, "", "n"},
                         {AggFunc::kSum, "revenue", "revenue"}};
      polaris::engine::QueryStats stats;
      auto result = engine.Query(txn->get(), "sales", spec, &stats);
      (void)engine.Abort(txn->get());
      if (!result.ok()) return;
      int64_t total = 0;
      for (size_t r = 0; r < result->num_rows(); ++r) {
        total += result->column(1).Int64At(r);
      }
      // Snapshot Isolation: the count is always a multiple of a full
      // committed batch — never a torn read of a half-finished load.
      std::printf(
          "[report] query %d: %lld rows visible (consistent snapshot), "
          "%llu files scanned\n",
          q, static_cast<long long>(total),
          static_cast<unsigned long long>(stats.scan.files_scanned));
      if (total % 3000 != 0) {
        std::fprintf(stderr, "TORN READ DETECTED: %lld\n",
                     static_cast<long long>(total));
        std::exit(1);
      }
    }
  });

  etl.join();
  reporting.join();

  // Final consistency check.
  auto txn = engine.Begin();
  CHECK_OK(txn.status());
  QuerySpec spec;
  spec.aggregates = {{AggFunc::kCount, "", "n"}};
  auto result = engine.Query(txn->get(), "sales", spec);
  CHECK_OK(result.status());
  std::printf("\nfinal row count: %lld (expect 18000)\n",
              static_cast<long long>(result->column(0).Int64At(0)));
  CHECK_OK(engine.Abort(txn->get()));

  // Clean up the orphan files the injected failures produced.
  engine.scheduler()->set_failure_policy({});
  engine.clock()->Advance(100LL * 24 * 3600 * 1'000'000);
  auto gc = engine.sto()->RunGarbageCollection();
  CHECK_OK(gc.status());
  std::printf("GC reclaimed %llu orphan blobs left by failed task attempts\n",
              static_cast<unsigned long long>(gc->blobs_deleted));
  std::printf("\nconcurrent ETL demo finished OK\n");
  return 0;
}
