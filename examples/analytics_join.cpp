// A small star-schema analytics pipeline on the public API: dimension and
// fact tables, a filtered fact scan, a hash join against the dimension,
// and a grouped aggregation — the shape of TPC-H Q3/Q5-style reporting
// queries over warehouse tables (paper §7.2).
//
//   $ ./build/examples/analytics_join

#include <cstdio>

#include "engine/engine.h"
#include "exec/join.h"

using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;
using polaris::exec::AggFunc;
using polaris::exec::CompareOp;
using polaris::exec::Conjunction;
using polaris::exec::HashAggregate;
using polaris::exec::HashJoin;
using polaris::exec::Predicate;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _st = (expr);                                              \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                     \
    }                                                               \
  } while (false)

}  // namespace

int main() {
  PolarisEngine db;

  // Dimension: customers with a market segment.
  Schema customer_schema({{"c_custkey", ColumnType::kInt64},
                          {"c_name", ColumnType::kString},
                          {"c_segment", ColumnType::kString}});
  CHECK_OK(db.CreateTable("customer", customer_schema).status());

  // Fact: orders, clustered by order date for zone-map pruning.
  Schema orders_schema({{"o_orderkey", ColumnType::kInt64},
                        {"o_custkey", ColumnType::kInt64},
                        {"o_orderdate", ColumnType::kInt64},
                        {"o_totalprice", ColumnType::kDouble}});
  CHECK_OK(db.CreateTable("orders", orders_schema, "o_orderdate").status());

  // Load both tables in one multi-table transaction.
  CHECK_OK(db.RunInTransaction([&](polaris::txn::Transaction* txn)
                                   -> polaris::common::Status {
    RecordBatch customers{customer_schema};
    const char* segments[] = {"BUILDING", "MACHINERY", "AUTOMOBILE"};
    for (int c = 1; c <= 30; ++c) {
      (void)customers.AppendRow({Value::Int64(c),
                                 Value::String("cust#" + std::to_string(c)),
                                 Value::String(segments[c % 3])});
    }
    POLARIS_RETURN_IF_ERROR(db.Insert(txn, "customer", customers).status());

    RecordBatch orders{orders_schema};
    polaris::common::Random rng(42);
    for (int o = 1; o <= 2000; ++o) {
      (void)orders.AppendRow(
          {Value::Int64(o),
           Value::Int64(static_cast<int64_t>(rng.Uniform(30)) + 1),
           Value::Int64(static_cast<int64_t>(rng.Uniform(365))),
           Value::Double(100.0 + static_cast<double>(rng.Uniform(9000)))});
    }
    return db.Insert(txn, "orders", orders).status();
  }));

  // "Revenue by segment for Q4 orders": filtered fact scan (zone maps
  // prune non-Q4 row groups), join to the dimension, group by segment.
  auto txn = db.Begin();
  CHECK_OK(txn.status());

  QuerySpec fact_scan;
  fact_scan.projection = {"o_custkey", "o_totalprice"};
  fact_scan.filter.predicates.push_back(
      Predicate::Make("o_orderdate", CompareOp::kGe, Value::Int64(274)));
  polaris::engine::QueryStats stats;
  auto facts = db.Query(txn->get(), "orders", fact_scan, &stats);
  CHECK_OK(facts.status());
  std::printf("fact scan: %zu Q4 rows (skipped %llu of %llu row groups)\n",
              facts->num_rows(),
              static_cast<unsigned long long>(stats.scan.row_groups_skipped),
              static_cast<unsigned long long>(stats.scan.row_groups_read +
                                              stats.scan.row_groups_skipped));

  QuerySpec dim_scan;
  dim_scan.projection = {"c_custkey", "c_segment"};
  auto dims = db.Query(txn->get(), "customer", dim_scan);
  CHECK_OK(dims.status());

  auto joined = HashJoin(*facts, *dims, {"o_custkey"}, {"c_custkey"});
  CHECK_OK(joined.status());
  auto report = HashAggregate(*joined, {"c_segment"},
                              {{AggFunc::kCount, "", "orders"},
                               {AggFunc::kSum, "o_totalprice", "revenue"},
                               {AggFunc::kAvg, "o_totalprice", "avg_order"}});
  CHECK_OK(report.status());
  CHECK_OK(db.Abort(txn->get()));

  std::printf("\nQ4 revenue by customer segment:\n");
  std::printf("%-14s %-8s %-14s %-12s\n", "segment", "orders", "revenue",
              "avg_order");
  for (size_t r = 0; r < report->num_rows(); ++r) {
    std::printf("%-14s %-8lld %-14.2f %-12.2f\n",
                report->column(0).StringAt(r).c_str(),
                static_cast<long long>(report->column(1).Int64At(r)),
                report->column(2).DoubleAt(r),
                report->column(3).DoubleAt(r));
  }
  std::printf("\nanalytics join demo finished OK\n");
  return 0;
}
