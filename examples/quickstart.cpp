// Quickstart: create a table, load data, run transactional updates and
// queries through the PolarisEngine public API.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "engine/engine.h"

using polaris::common::Status;
using polaris::engine::PolarisEngine;
using polaris::engine::QuerySpec;
using polaris::exec::AggFunc;
using polaris::exec::Assignment;
using polaris::exec::CompareOp;
using polaris::exec::Conjunction;
using polaris::exec::Predicate;
using polaris::format::ColumnType;
using polaris::format::RecordBatch;
using polaris::format::Schema;
using polaris::format::Value;

namespace {

#define CHECK_OK(expr)                                          \
  do {                                                          \
    auto _st = (expr);                                          \
    if (!_st.ok()) {                                            \
      std::fprintf(stderr, "FAILED: %s\n", _st.ToString().c_str()); \
      return 1;                                                 \
    }                                                           \
  } while (false)

void PrintBatch(const RecordBatch& batch) {
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    std::printf("%-14s", batch.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      std::printf("%-14s", batch.column(c).ValueAt(r).ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // An engine instance is one warehouse database: storage, catalog,
  // distributed compute and transactions in a box.
  PolarisEngine engine;

  // --- DDL -------------------------------------------------------------
  Schema schema({{"order_id", ColumnType::kInt64},
                 {"amount", ColumnType::kDouble},
                 {"status", ColumnType::kString}});
  CHECK_OK(engine.CreateTable("orders", schema).status());
  std::printf("created table 'orders'\n");

  // --- Load (auto-commit transaction with conflict retries) -------------
  RecordBatch rows{schema};
  for (int i = 1; i <= 8; ++i) {
    CHECK_OK(rows.AppendRow({Value::Int64(i), Value::Double(i * 25.0),
                             Value::String(i % 3 == 0 ? "shipped" : "open")}));
  }
  CHECK_OK(engine.RunInTransaction([&](polaris::txn::Transaction* txn) {
    return engine.Insert(txn, "orders", rows).status();
  }));
  std::printf("inserted %zu rows\n\n", rows.num_rows());

  // --- Multi-statement explicit transaction ------------------------------
  {
    auto txn = engine.Begin();
    CHECK_OK(txn.status());
    // Statement 1: cancel order 2.
    Conjunction where_order2;
    where_order2.predicates.push_back(
        Predicate::Make("order_id", CompareOp::kEq, Value::Int64(2)));
    CHECK_OK(engine.Delete(txn->get(), "orders", where_order2).status());
    // Statement 2: apply a 10% surcharge to open orders.
    Conjunction open_orders;
    open_orders.predicates.push_back(
        Predicate::Make("status", CompareOp::kEq, Value::String("open")));
    std::vector<Assignment> set = {{"amount",
                                    Assignment::Kind::kAddDouble,
                                    Value::Double(2.5)}};
    CHECK_OK(engine.Update(txn->get(), "orders", open_orders, set).status());
    // Both statements commit atomically with Snapshot Isolation.
    CHECK_OK(engine.Commit(txn->get()));
    std::printf("committed delete + update atomically\n\n");
  }

  // --- Query -----------------------------------------------------------
  {
    auto txn = engine.Begin();
    CHECK_OK(txn.status());
    QuerySpec spec;
    spec.projection = {"order_id", "amount", "status"};
    auto result = engine.Query(txn->get(), "orders", spec);
    CHECK_OK(result.status());
    std::printf("SELECT order_id, amount, status FROM orders:\n");
    PrintBatch(*result);

    QuerySpec agg;
    agg.group_by = {"status"};
    agg.aggregates = {{AggFunc::kCount, "", "n"},
                      {AggFunc::kSum, "amount", "total"}};
    auto grouped = engine.Query(txn->get(), "orders", agg);
    CHECK_OK(grouped.status());
    std::printf("\nSELECT status, COUNT(*), SUM(amount) GROUP BY status:\n");
    PrintBatch(*grouped);
    CHECK_OK(engine.Abort(txn->get()));
  }

  std::printf("\nquickstart finished OK\n");
  return 0;
}
